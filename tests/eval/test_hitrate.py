"""Unit tests for the HR@K evaluation protocol."""

import numpy as np
import pytest

from repro.data.schema import Session
from repro.eval.hitrate import HitRateResult, evaluate_hitrate, hitrate_table


class FakeRecommender:
    """Deterministic recommender: item i -> [i+1, i+2, ...]."""

    def __init__(self, n_items=100, known=None):
        self.n_items = n_items
        self.known = set(range(n_items)) if known is None else set(known)

    def __contains__(self, item_id):
        return int(item_id) in self.known

    def topk_batch(self, item_ids, k):
        out = np.full((len(item_ids), k), -1, dtype=np.int64)
        for row, item in enumerate(item_ids):
            ranked = [(int(item) + 1 + j) % self.n_items for j in range(k)]
            out[row] = ranked
        return out


def sessions(*seqs):
    return [Session(0, list(s)) for s in seqs]


class TestEvaluate:
    def test_perfect_hits_at_one(self):
        test = sessions([5, 6], [10, 11])
        result = evaluate_hitrate(FakeRecommender(), test, ks=(1,), name="m")
        assert result.hit_rates[1] == 1.0

    def test_rank_position_determines_k(self):
        # label = query + 3 -> found at rank 2 (0-based), so hit at K>=3.
        test = sessions([5, 8])
        result = evaluate_hitrate(FakeRecommender(), test, ks=(1, 2, 3, 10))
        assert result.hit_rates[1] == 0.0
        assert result.hit_rates[2] == 0.0
        assert result.hit_rates[3] == 1.0
        assert result.hit_rates[10] == 1.0

    def test_monotone_in_k(self, fitted_sgns, tiny_split):
        _, test = tiny_split
        result = evaluate_hitrate(fitted_sgns.index, test, ks=(1, 5, 20, 50))
        values = [result.hit_rates[k] for k in (1, 5, 20, 50)]
        assert values == sorted(values)

    def test_unknown_queries_count_as_misses(self):
        test = sessions([5, 6], [50, 51])
        rec = FakeRecommender(known={5})
        result = evaluate_hitrate(rec, test, ks=(1,))
        assert result.hit_rates[1] == 0.5
        assert result.n_queries == 2
        assert result.n_answerable == 1

    def test_uses_second_to_last_as_query(self):
        # Session [3, 9, 4]: query is 9, label is 4 -> miss for FakeRec.
        test = sessions([3, 9, 4])
        result = evaluate_hitrate(FakeRecommender(), test, ks=(1,))
        assert result.hit_rates[1] == 0.0

    def test_short_session_rejected(self):
        with pytest.raises(ValueError, match="length >= 2"):
            evaluate_hitrate(FakeRecommender(), sessions([7]), ks=(1,))

    def test_batching_boundary(self):
        test = sessions(*[[i, i + 1] for i in range(10)])
        a = evaluate_hitrate(FakeRecommender(), test, ks=(1,), batch_size=3)
        b = evaluate_hitrate(FakeRecommender(), test, ks=(1,), batch_size=100)
        assert a.hit_rates == b.hit_rates

    def test_ks_validation(self):
        with pytest.raises(ValueError):
            evaluate_hitrate(FakeRecommender(), sessions([0, 1]), ks=())
        with pytest.raises(ValueError):
            evaluate_hitrate(FakeRecommender(), sessions([0, 1]), ks=(0,))


class TestGains:
    def test_gain_over_baseline(self):
        base = HitRateResult("SGNS", {10: 0.02}, 100, 100)
        model = HitRateResult("SISG", {10: 0.03}, 100, 100)
        assert model.gain_over(base)[10] == pytest.approx(0.5)

    def test_gain_with_zero_baseline_is_nan(self):
        base = HitRateResult("SGNS", {10: 0.0}, 10, 10)
        model = HitRateResult("SISG", {10: 0.5}, 10, 10)
        assert np.isnan(model.gain_over(base)[10])


class TestTable:
    def test_table_contains_all_variants_and_gains(self):
        results = [
            HitRateResult("SGNS", {1: 0.01, 10: 0.02}, 100, 100),
            HitRateResult("SISG-F", {1: 0.02, 10: 0.05}, 100, 100),
        ]
        table = hitrate_table(results, baseline_name="SGNS")
        assert "SGNS" in table and "SISG-F" in table
        assert "+100.00%" in table
        assert "+150.00%" in table
        assert "HR@1" in table and "HR@10" in table

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            hitrate_table([])

    def test_missing_baseline_falls_back_to_first(self):
        results = [HitRateResult("A", {1: 0.5}, 10, 10)]
        table = hitrate_table(results, baseline_name="ZZZ")
        assert "A" in table
