"""Unit tests for the extended ranking metrics."""

import numpy as np
import pytest

from repro.data.schema import (
    ITEM_SI_FEATURES,
    BehaviorDataset,
    ItemMeta,
    Session,
    UserMeta,
)
from repro.eval.metrics import (
    RankingMetrics,
    evaluate_ranking_metrics,
    metrics_table,
)


class FixedRecommender:
    """Always returns the same ranked list."""

    def __init__(self, ranking):
        self.ranking = np.asarray(ranking, dtype=np.int64)

    def __contains__(self, item_id):
        return True

    def topk_batch(self, item_ids, k):
        out = np.full((len(item_ids), k), -1, dtype=np.int64)
        take = min(k, len(self.ranking))
        out[:, :take] = self.ranking[:take]
        return out


def make_dataset(n_items=10):
    items = [ItemMeta(i, {f: 0 for f in ITEM_SI_FEATURES}) for i in range(n_items)]
    users = [UserMeta(0, 0, 0, 0)]
    sessions = [Session(0, [0, 1, 2]), Session(0, [3, 4])]
    return BehaviorDataset(items, users, sessions)


class TestRankSensitive:
    def test_mrr_rank_positions(self):
        ds = make_dataset()
        rec = FixedRecommender([7, 5, 9])
        # label 5 at rank 2 -> RR = 1/2; label 9 at rank 3 -> RR = 1/3.
        tests = [Session(0, [0, 5]), Session(0, [0, 9])]
        metrics = evaluate_ranking_metrics(rec, tests, ds, k=3)
        assert metrics.mrr == pytest.approx((0.5 + 1 / 3) / 2)

    def test_ndcg_discount(self):
        ds = make_dataset()
        rec = FixedRecommender([7, 5])
        tests = [Session(0, [0, 5])]
        metrics = evaluate_ranking_metrics(rec, tests, ds, k=3)
        assert metrics.ndcg == pytest.approx(1.0 / np.log2(3))

    def test_miss_scores_zero(self):
        ds = make_dataset()
        rec = FixedRecommender([7])
        tests = [Session(0, [0, 5])]
        metrics = evaluate_ranking_metrics(rec, tests, ds, k=3)
        assert metrics.mrr == 0.0
        assert metrics.ndcg == 0.0


class TestCatalogueHealth:
    def test_coverage_counts_distinct_recommended(self):
        ds = make_dataset(n_items=10)
        rec = FixedRecommender([1, 2, 3])
        tests = [Session(0, [0, 5]), Session(0, [4, 6])]
        metrics = evaluate_ranking_metrics(rec, tests, ds, k=3)
        assert metrics.coverage == pytest.approx(0.3)

    def test_popularity_bias_detects_head(self):
        ds = make_dataset(n_items=10)
        # Items 0..4 appear in training; 0 appears most.
        head = FixedRecommender([0, 1])
        tail = FixedRecommender([8, 9])
        tests = [Session(0, [0, 5])]
        bias_head = evaluate_ranking_metrics(head, tests, ds, k=2).popularity_bias
        bias_tail = evaluate_ranking_metrics(tail, tests, ds, k=2).popularity_bias
        assert bias_head > 1.0
        assert bias_tail < 1.0


class TestInterface:
    def test_validation(self):
        ds = make_dataset()
        rec = FixedRecommender([1])
        with pytest.raises(ValueError):
            evaluate_ranking_metrics(rec, [], ds, k=3)
        with pytest.raises(ValueError):
            evaluate_ranking_metrics(rec, [Session(0, [0, 1])], ds, k=0)
        with pytest.raises(ValueError):
            evaluate_ranking_metrics(rec, [Session(0, [0])], ds, k=3)

    def test_on_trained_model(self, fitted_sgns, tiny_split, tiny_dataset):
        train, test = tiny_split
        metrics = evaluate_ranking_metrics(
            fitted_sgns.index, test, train, k=20, name="SGNS"
        )
        assert 0.0 < metrics.mrr <= 1.0
        assert 0.0 < metrics.ndcg <= 1.0
        assert 0.0 < metrics.coverage <= 1.0
        assert metrics.popularity_bias > 0.0

    def test_table_rendering(self):
        rows = [
            RankingMetrics("a", 20, 0.1, 0.2, 0.5, 1.3),
            RankingMetrics("b", 20, 0.2, 0.3, 0.6, 0.9),
        ]
        table = metrics_table(rows)
        assert "MRR" in table and "PopBias" in table
        assert "a" in table and "b" in table

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            metrics_table([])
