"""Unit tests for the exact t-SNE implementation."""

import numpy as np
import pytest

from repro.eval.tsne import cluster_separation, tsne


def two_blobs(n_per=30, gap=8.0, dim=10, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n_per, dim))
    b = rng.normal(size=(n_per, dim))
    b[:, 0] += gap
    x = np.vstack([a, b])
    labels = np.array([0] * n_per + [1] * n_per)
    return x, labels


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(ValueError, match="at least 4"):
            tsne(np.zeros((3, 5)))

    def test_perplexity_vs_points(self):
        with pytest.raises(ValueError, match="perplexity"):
            tsne(np.zeros((10, 5)), perplexity=10)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            tsne(np.zeros(10))


class TestEmbedding:
    def test_output_shape(self):
        x, _ = two_blobs(n_per=15)
        y = tsne(x, n_components=2, perplexity=5, n_iter=120, seed=0)
        assert y.shape == (30, 2)
        assert np.all(np.isfinite(y))

    def test_output_centered(self):
        x, _ = two_blobs(n_per=15)
        y = tsne(x, perplexity=5, n_iter=120, seed=0)
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-8)

    def test_reproducible(self):
        x, _ = two_blobs(n_per=10)
        a = tsne(x, perplexity=5, n_iter=60, seed=4)
        b = tsne(x, perplexity=5, n_iter=60, seed=4)
        np.testing.assert_array_equal(a, b)

    def test_separates_well_separated_blobs(self):
        """Fig. 5's premise: clusters in input space stay clusters."""
        x, labels = two_blobs(n_per=25, gap=10.0)
        y = tsne(x, perplexity=10, n_iter=300, seed=1)
        assert cluster_separation(y, labels) > 1.5

    def test_three_components(self):
        x, _ = two_blobs(n_per=10)
        y = tsne(x, n_components=3, perplexity=5, n_iter=60, seed=0)
        assert y.shape == (20, 3)


class TestClusterSeparation:
    def test_perfectly_separated(self):
        emb = np.array([[0.0, 0], [0.1, 0], [10, 0], [10.1, 0]])
        labels = np.array([0, 0, 1, 1])
        assert cluster_separation(emb, labels) > 10

    def test_mixed_labels_near_one(self):
        rng = np.random.default_rng(0)
        emb = rng.normal(size=(40, 2))
        labels = rng.integers(0, 2, size=40)
        assert 0.7 < cluster_separation(emb, labels) < 1.3

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            cluster_separation(np.zeros((4, 2)), np.zeros(4))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cluster_separation(np.zeros((4, 2)), np.zeros(3))
