"""Unit tests for HBGP and the random-partition strawman."""

import numpy as np
import pytest

from repro.data.schema import (
    ITEM_SI_FEATURES,
    BehaviorDataset,
    ItemMeta,
    Session,
    UserMeta,
)
from repro.graph.hbgp import (
    HBGPConfig,
    hbgp_partition,
    random_partition,
)


def make_dataset(session_items, item_leaf):
    """Items with explicit leaf assignment."""
    items = []
    for item_id, leaf in enumerate(item_leaf):
        si = {f: 0 for f in ITEM_SI_FEATURES}
        si["leaf_category"] = leaf
        items.append(ItemMeta(item_id, si))
    users = [UserMeta(0, 0, 0, 0)]
    sessions = [Session(0, list(s)) for s in session_items]
    return BehaviorDataset(items, users, sessions)


def clustered_dataset():
    """Four leaves; heavy traffic within {0,1} and within {2,3}."""
    # Leaves: items 0,1 -> leaf 0; 2,3 -> leaf 1; 4,5 -> leaf 2; 6,7 -> leaf 3.
    item_leaf = [0, 0, 1, 1, 2, 2, 3, 3]
    sessions = []
    sessions += [[0, 2], [2, 0], [1, 3]] * 10  # leaf 0 <-> leaf 1
    sessions += [[4, 6], [6, 4], [5, 7]] * 10  # leaf 2 <-> leaf 3
    sessions += [[0, 4]]  # one weak edge across the halves
    sessions += [[0, 1], [2, 3], [4, 5], [6, 7]] * 5  # in-leaf traffic
    return make_dataset(sessions, item_leaf)


class TestHBGPConfig:
    def test_defaults_valid(self):
        HBGPConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [("n_partitions", 0), ("beta", 0.9), ("beta_growth", 1.0)],
    )
    def test_invalid_rejected(self, field, value):
        cfg = HBGPConfig()
        setattr(cfg, field, value)
        with pytest.raises(ValueError):
            cfg.validate()


class TestHBGP:
    def test_groups_connected_leaves_together(self):
        ds = clustered_dataset()
        result = hbgp_partition(ds, HBGPConfig(n_partitions=2))
        lp = result.leaf_partition
        assert lp[0] == lp[1]  # leaves 0,1 together
        assert lp[2] == lp[3]  # leaves 2,3 together
        assert lp[0] != lp[2]
        # Only the single weak cross edge is cut.
        assert result.cut_weight == 1.0

    def test_exact_partition_count(self):
        ds = clustered_dataset()
        for w in (1, 2, 3, 4):
            result = hbgp_partition(ds, HBGPConfig(n_partitions=w))
            assert result.n_partitions == w
            assert len(set(result.leaf_partition.tolist())) == w

    def test_too_many_partitions_rejected(self):
        ds = clustered_dataset()
        with pytest.raises(ValueError, match="cannot exceed"):
            hbgp_partition(ds, HBGPConfig(n_partitions=10))

    def test_single_partition_has_zero_cut(self):
        ds = clustered_dataset()
        result = hbgp_partition(ds, HBGPConfig(n_partitions=1))
        assert result.cut_fraction == 0.0
        assert result.imbalance == 1.0

    def test_item_partition_follows_leaf_partition(self):
        ds = clustered_dataset()
        result = hbgp_partition(ds, HBGPConfig(n_partitions=2))
        for item in ds.items:
            assert (
                result.item_partition[item.item_id]
                == result.leaf_partition[item.leaf_category]
            )

    def test_balance_on_world(self, tiny_dataset):
        result = hbgp_partition(tiny_dataset, HBGPConfig(n_partitions=4))
        assert result.imbalance < 2.0
        assert 0.0 <= result.cut_fraction <= 1.0

    def test_beats_random_item_partition_on_world(self, tiny_dataset):
        """HBGP's whole point: far fewer cross-partition transitions."""
        hbgp = hbgp_partition(tiny_dataset, HBGPConfig(n_partitions=4))
        rand = random_partition(tiny_dataset, 4, seed=0)
        assert hbgp.cut_fraction < rand.cut_fraction * 0.5

    def test_disconnected_leaves_still_partition(self):
        # Two leaves with no cross traffic at all, three partitions needed.
        ds = make_dataset([[0, 1]] * 3 + [[2, 3]] * 3 + [[4, 5]] * 3,
                          [0, 0, 1, 1, 2, 2])
        result = hbgp_partition(ds, HBGPConfig(n_partitions=2))
        assert result.n_partitions == 2


class TestRandomPartition:
    def test_item_level_cut_near_expected(self, tiny_dataset):
        """Random item assignment cuts roughly (1 - 1/w) of transitions."""
        result = random_partition(tiny_dataset, 4, seed=1)
        assert 0.55 <= result.cut_fraction <= 0.9

    def test_by_leaf_keeps_in_leaf_transitions(self, tiny_dataset):
        leaf_level = random_partition(tiny_dataset, 4, seed=1, by_leaf=True)
        item_level = random_partition(tiny_dataset, 4, seed=1)
        assert leaf_level.cut_fraction < item_level.cut_fraction

    def test_balanced_loads(self, tiny_dataset):
        result = random_partition(tiny_dataset, 4, seed=0)
        assert result.imbalance < 1.5

    def test_partition_ids_in_range(self, tiny_dataset):
        result = random_partition(tiny_dataset, 3, seed=0)
        assert set(np.unique(result.item_partition)) <= {0, 1, 2}

    def test_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            random_partition(tiny_dataset, 0)
