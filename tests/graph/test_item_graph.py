"""Unit tests for the item transition graph."""

import numpy as np
import pytest
from scipy import sparse

from repro.data.schema import (
    ITEM_SI_FEATURES,
    BehaviorDataset,
    ItemMeta,
    Session,
    UserMeta,
)
from repro.graph.item_graph import ItemGraph, build_item_graph


def make_dataset(session_items, n_items=6):
    items = [ItemMeta(i, {f: 0 for f in ITEM_SI_FEATURES}) for i in range(n_items)]
    users = [UserMeta(0, 0, 0, 0)]
    sessions = [Session(0, list(s)) for s in session_items]
    return BehaviorDataset(items, users, sessions)


class TestBuild:
    def test_adjacent_transitions_counted(self):
        ds = make_dataset([[0, 1, 2], [0, 1]])
        graph = build_item_graph(ds)
        assert graph.edge_weight(0, 1) == 2.0
        assert graph.edge_weight(1, 2) == 1.0
        assert graph.edge_weight(2, 1) == 0.0

    def test_self_transitions_dropped(self):
        ds = make_dataset([[0, 0, 1]])
        graph = build_item_graph(ds)
        assert graph.edge_weight(0, 0) == 0.0
        assert graph.edge_weight(0, 1) == 1.0

    def test_node_frequency_counts_occurrences(self):
        ds = make_dataset([[0, 1, 0], [1, 2]])
        graph = build_item_graph(ds)
        np.testing.assert_array_equal(
            graph.node_frequency[:3], [2.0, 2.0, 1.0]
        )

    def test_empty_sessions_ok(self):
        ds = make_dataset([])
        graph = build_item_graph(ds)
        assert graph.n_edges == 0
        assert graph.total_transition_weight() == 0.0

    def test_out_neighbors(self):
        ds = make_dataset([[0, 1], [0, 2], [0, 1]])
        graph = build_item_graph(ds)
        neighbors, weights = graph.out_neighbors(0)
        assert set(neighbors.tolist()) == {1, 2}
        assert weights.sum() == 3.0

    def test_total_transition_weight(self):
        ds = make_dataset([[0, 1, 2, 3]])
        graph = build_item_graph(ds)
        assert graph.total_transition_weight() == 3.0


class TestValidation:
    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            ItemGraph(sparse.csr_matrix((2, 3)), np.zeros(2))

    def test_frequency_mismatch_rejected(self):
        with pytest.raises(ValueError, match="align"):
            ItemGraph(sparse.csr_matrix((3, 3)), np.zeros(2))


class TestAsymmetry:
    def test_fully_directed_graph(self):
        ds = make_dataset([[0, 1], [0, 1], [1, 2], [1, 2]])
        graph = build_item_graph(ds)
        assert graph.asymmetry_fraction(min_total=2) == 1.0

    def test_fully_symmetric_graph(self):
        ds = make_dataset([[0, 1], [1, 0], [0, 1], [1, 0]])
        graph = build_item_graph(ds)
        assert graph.asymmetry_fraction(min_total=2, ratio=2.0) == 0.0

    def test_min_total_filters_thin_pairs(self):
        ds = make_dataset([[0, 1]])
        graph = build_item_graph(ds)
        assert graph.asymmetry_fraction(min_total=5) == 0.0

    def test_world_graph_is_heavily_asymmetric(self, tiny_dataset):
        """The synthetic world's forward bias shows up in the graph."""
        graph = build_item_graph(tiny_dataset)
        assert graph.asymmetry_fraction() > 0.5


class TestNetworkxExport:
    def test_export_preserves_edges(self):
        ds = make_dataset([[0, 1, 2]])
        graph = build_item_graph(ds)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 6
        assert nx_graph[0][1]["weight"] == 1.0
        assert not nx_graph.has_edge(1, 0)
