"""Unit tests for the weighted random walker."""

import numpy as np
import pytest

from repro.data.schema import (
    ITEM_SI_FEATURES,
    BehaviorDataset,
    ItemMeta,
    Session,
    UserMeta,
)
from repro.graph.item_graph import build_item_graph
from repro.graph.random_walk import RandomWalker


def graph_from(session_items, n_items=5):
    items = [ItemMeta(i, {f: 0 for f in ITEM_SI_FEATURES}) for i in range(n_items)]
    users = [UserMeta(0, 0, 0, 0)]
    sessions = [Session(0, list(s)) for s in session_items]
    return build_item_graph(BehaviorDataset(items, users, sessions))


class TestWalks:
    def test_walk_follows_edges(self):
        graph = graph_from([[0, 1, 2], [1, 2, 3]])
        walker = RandomWalker(graph, walk_length=4, walks_per_node=1)
        walk = walker.walk_from(0, rng=0)
        for a, b in zip(walk[:-1], walk[1:]):
            assert graph.edge_weight(int(a), int(b)) > 0

    def test_walk_stops_at_sink(self):
        graph = graph_from([[0, 1]])
        walker = RandomWalker(graph, walk_length=10, walks_per_node=1)
        walk = walker.walk_from(0, rng=0)
        assert walk.tolist() == [0, 1]

    def test_walk_length_respected(self):
        graph = graph_from([[0, 1], [1, 0]])
        walker = RandomWalker(graph, walk_length=7, walks_per_node=1)
        assert len(walker.walk_from(0, rng=0)) == 7

    def test_generate_walks_count(self):
        graph = graph_from([[0, 1, 2], [2, 0]])
        walker = RandomWalker(graph, walk_length=3, walks_per_node=4)
        walks = walker.generate_walks(seed=0)
        # Nodes with outgoing edges: 0, 1, 2 -> 3 * 4 walks.
        assert len(walks) == 12

    def test_walks_reproducible(self):
        graph = graph_from([[0, 1, 2, 3], [3, 4], [1, 3]])
        walker = RandomWalker(graph, walk_length=5, walks_per_node=2)
        a = [w.tolist() for w in walker.generate_walks(seed=3)]
        b = [w.tolist() for w in walker.generate_walks(seed=3)]
        assert a == b

    def test_heavier_edges_walked_more(self):
        # 0 -> 1 nine times, 0 -> 2 once.
        sessions = [[0, 1]] * 9 + [[0, 2]]
        graph = graph_from(sessions)
        walker = RandomWalker(graph, walk_length=2, walks_per_node=1)
        rng = np.random.default_rng(0)
        hits = sum(walker.walk_from(0, rng)[1] == 1 for _ in range(500))
        assert hits > 400

    def test_validation(self):
        graph = graph_from([[0, 1]])
        with pytest.raises(ValueError):
            RandomWalker(graph, walk_length=0)
        with pytest.raises(ValueError):
            RandomWalker(graph, walks_per_node=0)
