"""Shared fixtures for the online-serving test suite.

The bundle build (k-means + candidate table) dominates runtime, so one
bundle per module is shared; tests that need isolated counters build
their own cheap :class:`MatchingService` over the shared bundle.
"""

from __future__ import annotations

import pytest

from repro.serving import ModelStore, build_bundle


@pytest.fixture(scope="module")
def serving_bundle(fitted_sisg, tiny_split):
    """One serving bundle over the shared SISG-F-U-D model.

    ``table_coverage=0.8`` leaves 20% of items out of the nightly table
    so the live-ANN tier is reachable.
    """
    train, _ = tiny_split
    return build_bundle(
        fitted_sisg.model, train, n_cells=12, table_coverage=0.8, seed=0
    )


@pytest.fixture()
def fresh_store(serving_bundle):
    """A store over the shared bundle (fresh version counter per test)."""
    return ModelStore(serving_bundle)
