"""Tests for the LRU/TTL result cache."""

import pytest

from repro.serving.cache import LRUTTLCache


class FakeClock:
    """Deterministic clock so TTL expiry is testable without sleeping."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLRU:
    def test_get_put_roundtrip(self):
        cache = LRUTTLCache(maxsize=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("b", default="fallback") == "fallback"

    def test_evicts_least_recently_used(self):
        cache = LRUTTLCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # touch a, making b the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUTTLCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, b becomes LRU
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_len_and_clear(self):
        cache = LRUTTLCache(maxsize=8)
        for i in range(5):
            cache.put(i, i)
        assert len(cache) == 5
        cache.clear()
        assert len(cache) == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LRUTTLCache(maxsize=0)
        with pytest.raises(ValueError):
            LRUTTLCache(ttl=0.0)


class TestTTL:
    def test_expires_after_ttl(self):
        clock = FakeClock()
        cache = LRUTTLCache(maxsize=4, ttl=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.999)
        assert cache.get("a") == 1
        clock.advance(0.002)
        assert cache.get("a") is None
        assert cache.expirations == 1
        assert len(cache) == 0  # expired entry is dropped, not retained

    def test_put_resets_age(self):
        clock = FakeClock()
        cache = LRUTTLCache(maxsize=4, ttl=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(8.0)
        cache.put("a", 2)
        clock.advance(8.0)
        assert cache.get("a") == 2  # 8s old relative to the re-put

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = LRUTTLCache(maxsize=4, ttl=None, clock=clock)
        cache.put("a", 1)
        clock.advance(1e9)
        assert cache.get("a") == 1

    def test_overflow_purges_expired_before_evicting_live(self):
        """Regression: a stale MRU entry must never push out a live LRU one.

        ``a`` is expired but most-recently-used; ``b`` is live but LRU.
        Overflow must drop ``a`` (an expiration), not evict ``b``.
        """
        clock = FakeClock()
        cache = LRUTTLCache(maxsize=2, ttl=12.0, clock=clock)
        cache.put("a", 1)
        clock.advance(5.0)
        cache.put("b", 2)
        cache.get("a")  # touch a: recency order is now [b, a]
        clock.advance(11.0)  # a is 16s old (dead), b is 11s old (live)
        cache.put("c", 3)
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.get("a") is None
        assert cache.expirations == 1
        assert cache.evictions == 0


class TestAccounting:
    def test_hit_miss_counters(self):
        cache = LRUTTLCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.hits == 2
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_expiry_counts_as_miss(self):
        clock = FakeClock()
        cache = LRUTTLCache(maxsize=4, ttl=1.0, clock=clock)
        cache.put("a", 1)
        clock.advance(2.0)
        cache.get("a")
        assert cache.misses == 1
        assert cache.hit_rate == 0.0

    def test_stats_shape(self):
        cache = LRUTTLCache(maxsize=4)
        stats = cache.stats()
        assert {"size", "maxsize", "hits", "misses", "hit_rate",
                "expirations", "evictions"} <= set(stats)


class TestTinyLFUAdmission:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="admission"):
            LRUTTLCache(maxsize=4, admission="lfu")

    def test_scan_resistance(self):
        """Regression: a one-pass scan of cold keys must not flush the hot
        working set through a TinyLFU gate — exactly what a plain LRU
        cannot prevent."""
        plain = LRUTTLCache(maxsize=8)
        gated = LRUTTLCache(maxsize=8, admission="tinylfu")
        for cache in (plain, gated):
            for key in range(8):
                cache.put(key, key)
            for _ in range(5):  # make the working set *frequent*
                for key in range(8):
                    assert cache.get(key) == key
            for cold in range(1000, 1100):  # the scan: each key seen once
                cache.put(cold, cold)
        # The plain LRU evicted every hot key; the gate bounced the scan.
        assert all(plain.get(key) is None for key in range(8))
        assert all(gated.get(key) == key for key in range(8))
        assert gated.admission_rejections == 100
        assert gated.evictions == 0

    def test_frequent_key_eventually_admitted(self):
        cache = LRUTTLCache(maxsize=2, admission="tinylfu")
        cache.put("a", 1)
        cache.put("b", 2)
        # One-shot insert bounces off the gate while residents are hotter.
        for _ in range(3):
            cache.get("a"), cache.get("b")
        cache.put("new", 3)
        assert cache.get("new") is None
        assert cache.admission_rejections == 1
        # But a key *asked for* often enough out-earns the LRU victim.
        for _ in range(10):
            cache.get("hot")  # misses, still counted as frequency signal
        cache.put("hot", 9)
        assert cache.get("hot") == 9
        assert len(cache) == 2

    def test_resident_refresh_always_accepted(self):
        cache = LRUTTLCache(maxsize=2, admission="tinylfu")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh displaces nothing: no gate
        assert cache.get("a") == 10
        assert cache.admission_rejections == 0

    def test_default_cache_has_no_gate(self):
        cache = LRUTTLCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # plain LRU: always admitted
        assert cache.get("c") == 3
        assert cache.admission_rejections == 0
        assert "admission_rejections" in cache.stats()

    def test_expired_entries_purged_before_gating(self):
        clock = FakeClock()
        cache = LRUTTLCache(maxsize=2, ttl=10.0, clock=clock, admission="tinylfu")
        cache.put("a", 1)
        cache.put("b", 2)
        clock.advance(11.0)
        # Both residents are dead: the insert fills freed space, no gate.
        cache.put("c", 3)
        assert cache.get("c") == 3
        assert cache.admission_rejections == 0
        assert cache.expirations == 2


class TestFrequencySketch:
    def test_estimate_counts_accesses(self):
        from repro.serving.cache import FrequencySketch

        sketch = FrequencySketch(width=256, depth=4)
        for _ in range(6):
            sketch.add("key")
        assert sketch.estimate("key") == 6
        assert sketch.estimate("never-seen") == 0

    def test_counters_saturate_at_cap(self):
        from repro.serving.cache import FrequencySketch

        sketch = FrequencySketch(width=256, depth=4)
        for _ in range(50):
            sketch.add("key")
        assert sketch.estimate("key") == 15

    def test_halving_ages_the_sample(self):
        from repro.serving.cache import FrequencySketch

        sketch = FrequencySketch(width=256, depth=4, sample_size=32)
        for _ in range(8):
            sketch.add("old-hot")
        for i in range(24):  # 32nd op triggers the halving
            sketch.add(f"filler-{i}")
        estimate = sketch.estimate("old-hot")
        assert 4 <= estimate <= 6  # halved (collisions may add a little)

    def test_invalid_params_rejected(self):
        from repro.serving.cache import FrequencySketch

        with pytest.raises(ValueError):
            FrequencySketch(width=0)
        with pytest.raises(ValueError):
            FrequencySketch(depth=0)
