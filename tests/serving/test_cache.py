"""Tests for the LRU/TTL result cache."""

import pytest

from repro.serving.cache import LRUTTLCache


class FakeClock:
    """Deterministic clock so TTL expiry is testable without sleeping."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLRU:
    def test_get_put_roundtrip(self):
        cache = LRUTTLCache(maxsize=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("b", default="fallback") == "fallback"

    def test_evicts_least_recently_used(self):
        cache = LRUTTLCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # touch a, making b the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUTTLCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, b becomes LRU
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_len_and_clear(self):
        cache = LRUTTLCache(maxsize=8)
        for i in range(5):
            cache.put(i, i)
        assert len(cache) == 5
        cache.clear()
        assert len(cache) == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LRUTTLCache(maxsize=0)
        with pytest.raises(ValueError):
            LRUTTLCache(ttl=0.0)


class TestTTL:
    def test_expires_after_ttl(self):
        clock = FakeClock()
        cache = LRUTTLCache(maxsize=4, ttl=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.999)
        assert cache.get("a") == 1
        clock.advance(0.002)
        assert cache.get("a") is None
        assert cache.expirations == 1
        assert len(cache) == 0  # expired entry is dropped, not retained

    def test_put_resets_age(self):
        clock = FakeClock()
        cache = LRUTTLCache(maxsize=4, ttl=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(8.0)
        cache.put("a", 2)
        clock.advance(8.0)
        assert cache.get("a") == 2  # 8s old relative to the re-put

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = LRUTTLCache(maxsize=4, ttl=None, clock=clock)
        cache.put("a", 1)
        clock.advance(1e9)
        assert cache.get("a") == 1

    def test_overflow_purges_expired_before_evicting_live(self):
        """Regression: a stale MRU entry must never push out a live LRU one.

        ``a`` is expired but most-recently-used; ``b`` is live but LRU.
        Overflow must drop ``a`` (an expiration), not evict ``b``.
        """
        clock = FakeClock()
        cache = LRUTTLCache(maxsize=2, ttl=12.0, clock=clock)
        cache.put("a", 1)
        clock.advance(5.0)
        cache.put("b", 2)
        cache.get("a")  # touch a: recency order is now [b, a]
        clock.advance(11.0)  # a is 16s old (dead), b is 11s old (live)
        cache.put("c", 3)
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.get("a") is None
        assert cache.expirations == 1
        assert cache.evictions == 0


class TestAccounting:
    def test_hit_miss_counters(self):
        cache = LRUTTLCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.hits == 2
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_expiry_counts_as_miss(self):
        clock = FakeClock()
        cache = LRUTTLCache(maxsize=4, ttl=1.0, clock=clock)
        cache.put("a", 1)
        clock.advance(2.0)
        cache.get("a")
        assert cache.misses == 1
        assert cache.hit_rate == 0.0

    def test_stats_shape(self):
        cache = LRUTTLCache(maxsize=4)
        stats = cache.stats()
        assert {"size", "maxsize", "hits", "misses", "hit_rate",
                "expirations", "evictions"} <= set(stats)
