"""Tests for the network serving gateway (HTTP edge + request coalescing).

The load-bearing contract: coalescing is an execution strategy, not a
semantic change — concurrent single ``/recommend`` calls through the
gateway must return byte-identical (ids, scores) answers to direct
``MatchingService.recommend`` calls, including while a hot swap lands
mid-traffic.  Caches are off on both sides so every comparison hits the
compute path.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serving import (
    TIERS,
    GatewayConfig,
    GatewayThread,
    LoadMix,
    MatchingService,
    MatchingServiceConfig,
    ModelStore,
    request_to_payload,
    synth_requests,
)

K = 5


def _call(port, method, path, payload=None, timeout=30.0):
    """One blocking HTTP round trip; returns (status, parsed body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _no_cache_service(bundle):
    return MatchingService(
        ModelStore(bundle), MatchingServiceConfig(default_k=K, cache_size=0)
    )


@pytest.fixture()
def direct(serving_bundle):
    """The ground truth: the same bundle answered without a network."""
    return _no_cache_service(serving_bundle)


@pytest.fixture()
def gateway(serving_bundle):
    service = _no_cache_service(serving_bundle)
    config = GatewayConfig(port=0, max_batch=8, max_wait_ms=5.0, default_k=K)
    with GatewayThread(service, config) as gw:
        yield gw


def _assert_identical(payload: dict, expected) -> None:
    """Wire answer == in-process answer, down to the exact float values."""
    assert payload["items"] == [int(item) for item in expected.items]
    assert payload["scores"] == [float(score) for score in expected.scores]
    assert payload["tier"] == expected.tier


class TestEndpoints:
    def test_healthz(self, gateway):
        status, body = _call(gateway.port, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["store_version"] == 0
        assert body["uptime_s"] >= 0.0

    def test_metrics_shape(self, gateway):
        _call(gateway.port, "GET", "/recommend?item_id=0")
        status, body = _call(gateway.port, "GET", "/metrics")
        assert status == 200  # json.loads in _call already proved JSON-strict
        assert body["counters"]["gateway_requests"] == 1
        edge = body["gateway"]
        assert edge["max_batch"] == 8
        assert edge["queue_depth"] == 0
        assert "gateway" in body["tiers"]  # end-to-end latency histogram

    def test_get_recommend_matches_direct(self, gateway, direct):
        status, body = _call(gateway.port, "GET", f"/recommend?item_id=3&k={K}")
        assert status == 200
        from repro.serving import MatchRequest

        _assert_identical(body, direct.recommend(MatchRequest(item_id=3), K))
        assert body["tier"] in TIERS
        assert body["version"] == 0
        assert body["cached"] is False

    def test_post_recommend_every_kind(self, gateway, direct, tiny_split):
        train, _ = tiny_split
        requests = synth_requests(
            train, 12, mix=LoadMix(0.25, 0.25, 0.25, 0.25), seed=7
        )
        for request in requests:
            payload = {**request_to_payload(request), "k": K}
            status, body = _call(gateway.port, "POST", "/recommend", payload)
            assert status == 200
            _assert_identical(body, direct.recommend(request, K))

    def test_default_k_applies(self, gateway):
        status, body = _call(gateway.port, "POST", "/recommend", {"item_id": 0})
        assert status == 200
        assert len(body["items"]) == K

    def test_recommend_batch_matches_direct(self, gateway, direct, tiny_split):
        train, _ = tiny_split
        requests = synth_requests(train, 6, seed=3)
        payload = {
            "requests": [request_to_payload(r) for r in requests],
            "k": K,
        }
        status, body = _call(gateway.port, "POST", "/recommend_batch", payload)
        assert status == 200
        expected = direct.recommend_batch(requests, K)
        assert len(body["results"]) == len(expected)
        for entry, answer in zip(body["results"], expected):
            _assert_identical(entry, answer)
        assert body["latency_s"] > 0.0

    def test_recommend_batch_honors_per_entry_k(self, gateway, direct):
        """Regression: per-entry ``k`` used to be validated then silently
        dropped — every entry got the batch-level (or default) ``k``."""
        from repro.serving import MatchRequest

        payload = {
            "requests": [
                {"item_id": 3, "k": 2},
                {"item_id": 9},  # falls back to the batch-level k
                {"item_id": 3, "k": 7},
            ],
            "k": 4,
        }
        status, body = _call(gateway.port, "POST", "/recommend_batch", payload)
        assert status == 200
        for entry, (item, k) in zip(body["results"], [(3, 2), (9, 4), (3, 7)]):
            assert len(entry["items"]) == k
            _assert_identical(entry, direct.recommend(MatchRequest(item_id=item), k))


class TestErrorPaths:
    def test_unknown_endpoint_404(self, gateway):
        status, body = _call(gateway.port, "GET", "/nope")
        assert status == 404
        assert "error" in body

    def test_wrong_method_405(self, gateway):
        assert _call(gateway.port, "POST", "/healthz", {})[0] == 405
        assert _call(gateway.port, "GET", "/recommend_batch")[0] == 405

    def test_invalid_json_400(self, gateway):
        conn = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=10)
        try:
            conn.request(
                "POST", "/recommend", body="{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert "invalid JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_unknown_field_400(self, gateway):
        status, body = _call(
            gateway.port, "POST", "/recommend", {"item_id": 0, "bogus": 1}
        )
        assert status == 400
        assert "bogus" in body["error"]

    def test_unknown_query_param_400(self, gateway):
        status, body = _call(gateway.port, "GET", "/recommend?item_id=0&junk=1")
        assert status == 400
        assert "junk" in body["error"]

    def test_nonpositive_k_400(self, gateway):
        status, _ = _call(gateway.port, "POST", "/recommend", {"item_id": 0, "k": 0})
        assert status == 400

    def test_empty_batch_400(self, gateway):
        status, _ = _call(gateway.port, "POST", "/recommend_batch", {"requests": []})
        assert status == 400

    def test_port_conflict_surfaces_at_start(self, gateway, serving_bundle):
        rival = GatewayThread(
            _no_cache_service(serving_bundle),
            GatewayConfig(port=gateway.port),
        )
        with pytest.raises(RuntimeError, match="startup failed"):
            rival.start(timeout=5.0)


class TestCoalescing:
    def test_concurrent_singles_identical_to_direct(
        self, serving_bundle, direct, tiny_split
    ):
        """The tentpole contract: coalesced answers == direct answers."""
        train, _ = tiny_split
        requests = synth_requests(train, 48, seed=11)
        expected = [direct.recommend(request, K) for request in requests]

        config = GatewayConfig(
            port=0, max_batch=16, max_wait_ms=20.0, default_k=K
        )
        with GatewayThread(_no_cache_service(serving_bundle), config) as gw:
            with ThreadPoolExecutor(max_workers=16) as pool:
                responses = list(
                    pool.map(
                        lambda request: _call(
                            gw.port,
                            "POST",
                            "/recommend",
                            {**request_to_payload(request), "k": K},
                        ),
                        requests,
                    )
                )
            metrics = gw.gateway.service.metrics

        for (status, body), answer in zip(responses, expected):
            assert status == 200
            _assert_identical(body, answer)

        batches = metrics.counter("gateway_coalesced_batches")
        assert metrics.counter("gateway_coalesced_requests") == len(requests)
        assert 1 <= batches < len(requests), "coalescing never engaged"

    def test_mixed_k_traffic_coalesces_correctly(self, serving_bundle, direct):
        from repro.serving import MatchRequest

        jobs = [(item, 3 if item % 2 else 7) for item in range(20)]
        config = GatewayConfig(
            port=0, max_batch=16, max_wait_ms=20.0, default_k=K
        )
        with GatewayThread(_no_cache_service(serving_bundle), config) as gw:
            with ThreadPoolExecutor(max_workers=10) as pool:
                responses = list(
                    pool.map(
                        lambda job: _call(
                            gw.port,
                            "POST",
                            "/recommend",
                            {"item_id": job[0], "k": job[1]},
                        ),
                        jobs,
                    )
                )
        for (status, body), (item, k) in zip(responses, jobs):
            assert status == 200
            assert len(body["items"]) == k
            _assert_identical(body, direct.recommend(MatchRequest(item_id=item), k))


class TestHotSwap:
    def test_swap_mid_traffic_never_breaks_answers(
        self, serving_bundle, direct, tiny_split
    ):
        """A promotion through the swap gate overlaps live traffic; every
        response must still be byte-identical to the direct answer."""
        train, _ = tiny_split
        requests = synth_requests(train, 40, mix=LoadMix(1, 0, 0, 0), seed=5)
        expected = [direct.recommend(request, K) for request in requests]

        store = ModelStore(serving_bundle)
        service = MatchingService(
            store, MatchingServiceConfig(default_k=K, cache_size=0)
        )
        config = GatewayConfig(
            port=0, max_batch=8, max_wait_ms=10.0, default_k=K
        )
        with GatewayThread(service, config) as gw:

            def shoot(request):
                return _call(
                    gw.port,
                    "POST",
                    "/recommend",
                    {**request_to_payload(request), "k": K},
                )

            with ThreadPoolExecutor(max_workers=12) as pool:
                futures = [pool.submit(shoot, r) for r in requests]
                # Promote the same bundle while requests are in flight:
                # answers stay identical, the version counter proves the
                # swap really happened mid-run.
                gw.swap_gate(lambda: store.swap(serving_bundle))
                responses = [f.result() for f in futures]

            metrics = gw.gateway.service.metrics
            # The gate released with traffic still flowing: a follow-up
            # request serves the promoted generation.
            status, after = _call(gw.port, "GET", "/recommend?item_id=0")
            assert status == 200
            assert after["version"] == 1

        versions = set()
        for (status, body), answer in zip(responses, expected):
            assert status == 200
            _assert_identical(body, answer)
            versions.add(body["version"])
        assert versions <= {0, 1}
        assert store.version == 1
        assert metrics.counter("gateway_swap_gates") == 1


class TestLoadShedding:
    def test_queue_past_high_water_sheds_429(self, serving_bundle):
        service = _no_cache_service(serving_bundle)
        config = GatewayConfig(
            port=0,
            max_batch=4,
            max_wait_ms=1.0,
            queue_high_water=2,
            latency_budget_ms=None,
            executor_threads=1,
            default_k=K,
        )
        with GatewayThread(service, config) as gw:
            gate_held = threading.Event()
            release = threading.Event()

            def blocker():
                gate_held.set()
                assert release.wait(30.0)

            holder = threading.Thread(target=gw.swap_gate, args=(blocker,))
            holder.start()
            assert gate_held.wait(10.0)
            metrics = gw.gateway.service.metrics
            try:
                # With the gate held exclusive no batch can complete, so a
                # burst piles into the coalescing queue and spills over the
                # high-water mark.
                with ThreadPoolExecutor(max_workers=32) as pool:
                    futures = [
                        pool.submit(
                            _call, gw.port, "POST", "/recommend", {"item_id": 0}
                        )
                        for _ in range(48)
                    ]
                    # Admitted requests cannot answer until the gate drops;
                    # release it once the whole burst has been admitted or
                    # shed (the admission counter bumps before any queueing).
                    deadline = time.monotonic() + 20.0
                    while (
                        metrics.counter("gateway_requests") < 48
                        and time.monotonic() < deadline
                    ):
                        time.sleep(0.01)
                    release.set()
                    statuses = [f.result()[0] for f in futures]
            finally:
                release.set()
                holder.join(timeout=30.0)
            shed = metrics.counter("gateway_shed_queue_full")

        assert set(statuses) <= {200, 429}, "shedding must be clean 429s"
        assert statuses.count(429) == shed
        assert shed > 0, "high-water admission control never engaged"
        assert statuses.count(200) + statuses.count(429) == 48

    def test_latency_budget_expiry_sheds_429(self, serving_bundle):
        service = _no_cache_service(serving_bundle)
        config = GatewayConfig(
            port=0,
            max_batch=8,
            # The window (100ms) exceeds the budget (1ms), so a lone
            # request is already expired when its batch dispatches.
            max_wait_ms=100.0,
            latency_budget_ms=1.0,
            default_k=K,
        )
        with GatewayThread(service, config) as gw:
            status, body = _call(gw.port, "POST", "/recommend", {"item_id": 0})
            metrics = gw.gateway.service.metrics
        assert status == 429
        assert "latency budget" in body["error"]
        assert metrics.counter("gateway_shed_expired") == 1
        assert metrics.counter("gateway_shed") == 1
