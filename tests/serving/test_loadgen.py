"""Tests for the synthetic load generator (request shaping + reporting)."""

import time
from collections import Counter

import numpy as np
import pytest

from repro.serving import (
    LoadMix,
    MatchingService,
    MatchingServiceConfig,
    run_load,
    synth_requests,
)


class TestSynthRequests:
    def test_mix_fractions_validated(self, tiny_dataset):
        with pytest.raises(ValueError):
            synth_requests(tiny_dataset, 10, mix=LoadMix(0.5, 0.5, 0.5, 0.5))

    def test_warm_zipf_tail_is_folded_not_clamped(self, tiny_dataset):
        """Regression: `min(rank - 1, n_items - 1)` piled the whole Zipf
        tail onto the last catalogue item, making it artificially hot."""
        requests = synth_requests(
            tiny_dataset, 20_000, mix=LoadMix(1.0, 0.0, 0.0, 0.0), seed=3
        )
        counts = Counter(r.item_id for r in requests)
        n = tiny_dataset.n_items
        assert all(0 <= item < n for item in counts)
        # The head of the Zipf curve must dominate; the last item only
        # collects the folded tail slivers, nothing like the ~30% of warm
        # mass the clamp used to give it.
        assert counts[0] == max(counts.values())
        assert counts[n - 1] / len(requests) < 0.05

    def test_warm_head_still_skewed(self, tiny_dataset):
        requests = synth_requests(
            tiny_dataset, 5_000, mix=LoadMix(1.0, 0.0, 0.0, 0.0), seed=1
        )
        counts = Counter(r.item_id for r in requests)
        top_10 = sum(counts[i] for i in range(10))
        assert top_10 / len(requests) > 0.4  # a hot head survives the fold

    def test_request_kinds_match_mix(self, tiny_dataset):
        requests = synth_requests(
            tiny_dataset, 400, mix=LoadMix(0.25, 0.25, 0.25, 0.25), seed=0
        )
        kinds = Counter(
            "warm" if r.item_id is not None and r.item_id < tiny_dataset.n_items
            else "unknown" if r.item_id is not None
            else "cold_item" if r.si_values is not None
            else "cold_user"
            for r in requests
        )
        assert set(kinds) == {"warm", "unknown", "cold_item", "cold_user"}


class TestRunLoad:
    def test_swap_cost_reported_separately(self, fresh_store, tiny_dataset):
        """Regression: the swap used to land inside a request lap and
        inflate `max_lap_s`."""
        service = MatchingService(
            fresh_store, MatchingServiceConfig(default_k=5, cache_ttl=None)
        )
        requests = synth_requests(tiny_dataset, 200, seed=0)
        pause = 0.15

        def slow_swap() -> None:
            time.sleep(pause)
            fresh_store.swap(fresh_store.current())

        report = run_load(service, requests, k=5, swap=slow_swap, swap_after=0.5)
        assert report["swap_performed"]
        assert report["swap_duration_s"] >= pause
        assert report["max_lap_s"] < pause
        assert report["failures"] == 0
        assert len(report["versions_served"]) == 2

    def test_no_swap_reports_zero_duration(self, fresh_store, tiny_dataset):
        service = MatchingService(
            fresh_store, MatchingServiceConfig(default_k=5, cache_ttl=None)
        )
        requests = synth_requests(tiny_dataset, 50, seed=1)
        report = run_load(service, requests, k=5)
        assert not report["swap_performed"]
        assert report["swap_duration_s"] == 0.0
        assert report["served"] == 50
        assert report["qps"] > 0

    def test_batched_run_counts_every_request(self, fresh_store, tiny_dataset):
        service = MatchingService(
            fresh_store, MatchingServiceConfig(default_k=5, cache_ttl=None)
        )
        requests = synth_requests(tiny_dataset, 64, seed=2)
        report = run_load(service, requests, k=5, batch_size=16)
        assert report["served"] == 64
        assert report["failures"] == 0
        total_observed = sum(
            s["count"] for s in report["tiers"].values()
        )
        # Every request lands on exactly one histogram (incl. cache hits).
        assert total_observed == 64.0
        assert np.isfinite(report["max_lap_s"])
