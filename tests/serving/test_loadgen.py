"""Tests for the synthetic load generator (request shaping + reporting)."""

import time
from collections import Counter

import numpy as np
import pytest

from repro.serving import (
    LoadMix,
    MatchingService,
    MatchingServiceConfig,
    latency_percentiles,
    run_load,
    synth_requests,
)


class TestLoadMix:
    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError, match="not all be zero"):
            LoadMix(0, 0, 0, 0).validate()

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            LoadMix(0.5, -0.1, 0.3, 0.3).validate()

    def test_unnormalized_weights_renormalize(self):
        fractions = LoadMix(7, 1, 1, 1).fractions()
        assert fractions == pytest.approx(
            LoadMix(0.7, 0.1, 0.1, 0.1).fractions()
        )
        assert sum(fractions) == 1.0

    def test_float_noise_sum_is_exactly_one(self):
        """Regression: 0.3 + 0.3 + 0.4 sums to 0.9999999999999999 and
        `Generator.choice` rejects it; `fractions()` must fold the ulp."""
        fractions = LoadMix(0.3, 0.3, 0.4, 0.0).fractions()
        assert sum(fractions) == 1.0
        rng = np.random.default_rng(0)
        rng.choice(len(fractions), size=8, p=list(fractions))  # must not raise

    def test_zero_weight_class_never_emitted(self, tiny_dataset):
        """Regression: `validate()` used to demand every weight > 0, so a
        pure-warm mix (cold classes zeroed) was rejected outright."""
        requests = synth_requests(
            tiny_dataset, 300, mix=LoadMix(0.5, 0.0, 0.5, 0.0), seed=4
        )
        for request in requests:
            # kinds 3 (unknown: id beyond catalogue) and 1 (cold item:
            # si_values without an id) must never appear.
            if request.item_id is not None:
                assert request.item_id < tiny_dataset.n_items
            else:
                assert request.si_values is None  # cold user, not cold item


class TestLatencyPercentiles:
    def test_empty_is_zero(self):
        assert latency_percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_matches_numpy_quantiles(self):
        samples = np.random.default_rng(1).exponential(0.002, size=400)
        got = latency_percentiles(samples)
        assert got["p50"] == pytest.approx(np.quantile(samples, 0.5))
        assert got["p99"] == pytest.approx(np.quantile(samples, 0.99))
        assert got["p50"] <= got["p95"] <= got["p99"]


class TestSynthRequests:
    def test_mix_fractions_validated(self, tiny_dataset):
        with pytest.raises(ValueError):
            synth_requests(tiny_dataset, 10, mix=LoadMix(0.5, -0.5, 0.5, 0.5))

    def test_warm_zipf_tail_is_folded_not_clamped(self, tiny_dataset):
        """Regression: `min(rank - 1, n_items - 1)` piled the whole Zipf
        tail onto the last catalogue item, making it artificially hot."""
        requests = synth_requests(
            tiny_dataset, 20_000, mix=LoadMix(1.0, 0.0, 0.0, 0.0), seed=3
        )
        counts = Counter(r.item_id for r in requests)
        n = tiny_dataset.n_items
        assert all(0 <= item < n for item in counts)
        # The head of the Zipf curve must dominate; the last item only
        # collects the folded tail slivers, nothing like the ~30% of warm
        # mass the clamp used to give it.
        assert counts[0] == max(counts.values())
        assert counts[n - 1] / len(requests) < 0.05

    def test_warm_head_still_skewed(self, tiny_dataset):
        requests = synth_requests(
            tiny_dataset, 5_000, mix=LoadMix(1.0, 0.0, 0.0, 0.0), seed=1
        )
        counts = Counter(r.item_id for r in requests)
        top_10 = sum(counts[i] for i in range(10))
        assert top_10 / len(requests) > 0.4  # a hot head survives the fold

    def test_request_kinds_match_mix(self, tiny_dataset):
        requests = synth_requests(
            tiny_dataset, 400, mix=LoadMix(0.25, 0.25, 0.25, 0.25), seed=0
        )
        kinds = Counter(
            "warm" if r.item_id is not None and r.item_id < tiny_dataset.n_items
            else "unknown" if r.item_id is not None
            else "cold_item" if r.si_values is not None
            else "cold_user"
            for r in requests
        )
        assert set(kinds) == {"warm", "unknown", "cold_item", "cold_user"}


class TestRunLoad:
    def test_swap_cost_reported_separately(self, fresh_store, tiny_dataset):
        """Regression: the swap used to land inside a request lap and
        inflate `max_lap_s`."""
        service = MatchingService(
            fresh_store, MatchingServiceConfig(default_k=5, cache_ttl=None)
        )
        requests = synth_requests(tiny_dataset, 200, seed=0)
        pause = 0.15

        def slow_swap() -> None:
            time.sleep(pause)
            fresh_store.swap(fresh_store.current())

        report = run_load(service, requests, k=5, swap=slow_swap, swap_after=0.5)
        assert report["swap_performed"]
        assert report["swap_duration_s"] >= pause
        assert report["max_lap_s"] < pause
        assert report["failures"] == 0
        assert len(report["versions_served"]) == 2

    def test_no_swap_reports_zero_duration(self, fresh_store, tiny_dataset):
        service = MatchingService(
            fresh_store, MatchingServiceConfig(default_k=5, cache_ttl=None)
        )
        requests = synth_requests(tiny_dataset, 50, seed=1)
        report = run_load(service, requests, k=5)
        assert not report["swap_performed"]
        assert report["swap_duration_s"] == 0.0
        assert report["served"] == 50
        assert report["qps"] > 0

    def test_batched_run_counts_every_request(self, fresh_store, tiny_dataset):
        service = MatchingService(
            fresh_store, MatchingServiceConfig(default_k=5, cache_ttl=None)
        )
        requests = synth_requests(tiny_dataset, 64, seed=2)
        report = run_load(service, requests, k=5, batch_size=16)
        assert report["served"] == 64
        assert report["failures"] == 0
        total_observed = sum(
            s["count"] for s in report["tiers"].values()
        )
        # Every request lands on exactly one histogram (incl. cache hits).
        assert total_observed == 64.0
        assert np.isfinite(report["max_lap_s"])

    def test_report_carries_latency_percentiles(self, fresh_store, tiny_dataset):
        service = MatchingService(
            fresh_store, MatchingServiceConfig(default_k=5, cache_ttl=None)
        )
        requests = synth_requests(tiny_dataset, 40, seed=3)
        report = run_load(service, requests, k=5, batch_size=8)
        latency = report["latency_s"]
        assert set(latency) == {"p50", "p95", "p99"}
        assert 0.0 < latency["p50"] <= latency["p95"] <= latency["p99"]


class TestColdWave:
    def test_off_by_default(self, tiny_dataset):
        requests = synth_requests(tiny_dataset, 300, seed=5)
        n = tiny_dataset.n_items
        assert not any(
            r.item_id is not None and r.item_id >= n and r.si_values is not None
            for r in requests
        )

    def test_four_weight_call_sites_still_work(self):
        # The 5th weight is positional-last and defaults to 0: old
        # LoadMix(w, ci, cu, u) constructions keep their meaning.
        assert LoadMix(7, 1, 1, 1).fractions()[:4] == pytest.approx(
            (0.7, 0.1, 0.1, 0.1)
        )
        assert LoadMix(7, 1, 1, 1).fractions()[4] == 0.0

    def test_wave_requests_are_described_never_seen_ids(self, tiny_dataset):
        requests = synth_requests(
            tiny_dataset,
            400,
            mix=LoadMix(0.5, 0.0, 0.0, 0.0, 0.5),
            seed=6,
            wave_pool=4,
        )
        n = tiny_dataset.n_items
        wave = [
            r
            for r in requests
            if r.item_id is not None and r.item_id >= n
        ]
        assert wave  # the class was emitted
        ids = {r.item_id for r in wave}
        assert len(ids) <= 4  # drawn from the wave pool
        for r in wave:
            assert r.item_id >= n + 10**6  # far outside the catalogue
            assert r.si_values  # described: a listing, not garbage


    def test_wave_arrives_as_one_contiguous_burst(self, tiny_dataset):
        requests = synth_requests(
            tiny_dataset,
            500,
            mix=LoadMix(0.8, 0.0, 0.0, 0.0, 0.2),
            seed=7,
        )
        n = tiny_dataset.n_items
        positions = [
            i
            for i, r in enumerate(requests)
            if r.item_id is not None and r.item_id >= n
        ]
        assert len(positions) > 1
        assert positions == list(range(positions[0], positions[-1] + 1))

    def test_wave_only_mix_is_valid(self, tiny_dataset):
        requests = synth_requests(
            tiny_dataset, 50, mix=LoadMix(0, 0, 0, 0, 1.0), seed=8
        )
        assert len(requests) == 50
        assert all(r.si_values for r in requests)
