"""Tests for serving counters and latency histograms."""

import numpy as np
import pytest

from repro.serving.metrics import LatencyHistogram, ServingMetrics, to_jsonable


class TestLatencyHistogram:
    def test_empty_snapshot_is_zero(self):
        snap = LatencyHistogram().snapshot()
        assert snap == {"count": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_quantiles_match_numpy(self):
        hist = LatencyHistogram(max_samples=1000)
        rng = np.random.default_rng(0)
        samples = rng.exponential(scale=0.001, size=500)
        for s in samples:
            hist.observe(float(s))
        for q in (0.5, 0.95, 0.99):
            assert hist.quantile(q) == pytest.approx(np.quantile(samples, q))

    def test_snapshot_ordering(self):
        hist = LatencyHistogram()
        for s in np.linspace(0.001, 0.1, 200):
            hist.observe(float(s))
        snap = hist.snapshot()
        assert snap["p50"] <= snap["p95"] <= snap["p99"]
        assert snap["count"] == 200.0
        assert snap["mean"] == pytest.approx(np.linspace(0.001, 0.1, 200).mean())

    def test_ring_buffer_keeps_recent(self):
        hist = LatencyHistogram(max_samples=10)
        for _ in range(100):
            hist.observe(1.0)  # old regime
        for _ in range(10):
            hist.observe(2.0)  # recent regime fills the whole ring
        assert hist.quantile(0.5) == pytest.approx(2.0)
        assert hist.count == 110  # lifetime count survives the ring

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LatencyHistogram(max_samples=0)


class TestServingMetrics:
    def test_counters(self):
        metrics = ServingMetrics()
        metrics.incr("requests")
        metrics.incr("requests", 4)
        assert metrics.counter("requests") == 5
        assert metrics.counter("never_touched") == 0

    def test_per_tier_histograms(self):
        metrics = ServingMetrics()
        metrics.observe("table", 0.001)
        metrics.observe("table", 0.003)
        metrics.observe("ann", 0.010)
        snap = metrics.snapshot()
        assert set(snap["tiers"]) == {"table", "ann"}
        assert snap["tiers"]["table"]["count"] == 2.0
        assert snap["tiers"]["ann"]["p50"] == pytest.approx(0.010)

    def test_cache_hit_rate(self):
        metrics = ServingMetrics()
        assert metrics.cache_hit_rate == 0.0
        metrics.incr("cache_hit", 3)
        metrics.incr("cache_miss", 1)
        assert metrics.cache_hit_rate == pytest.approx(0.75)
        assert metrics.snapshot()["cache_hit_rate"] == pytest.approx(0.75)

    def test_snapshot_is_json_shaped(self):
        import json

        metrics = ServingMetrics()
        metrics.incr("requests")
        metrics.observe("popularity", 0.0001)
        json.dumps(metrics.snapshot())  # must not raise


class TestToJsonable:
    def test_numpy_scalars_become_native(self):
        out = to_jsonable({"a": np.int64(3), "b": np.float32(0.5)})
        assert out == {"a": 3, "b": 0.5}
        assert type(out["a"]) is int
        assert type(out["b"]) is float

    def test_arrays_and_tuples_become_lists(self):
        out = to_jsonable({"v": np.arange(3), "t": (1, 2)})
        assert out == {"v": [0, 1, 2], "t": [1, 2]}

    def test_non_string_keys_become_strings(self):
        out = to_jsonable({np.int64(7): {0: "zero"}})
        assert out == {"7": {"0": "zero"}}

    def test_nested_structures(self):
        out = to_jsonable([{"x": (np.float64(1.0), [np.int32(2)])}])
        assert out == [{"x": [1.0, [2]]}]


class TestSnapshotJsonRegression:
    def test_numpy_inputs_serialize(self):
        """Regression: numpy scalars recorded through incr/set_gauge/observe
        used to survive into the snapshot and break ``json.dumps`` — which
        broke every consumer that serializes one, most importantly the
        gateway's ``/metrics`` endpoint."""
        import json

        metrics = ServingMetrics()
        metrics.incr("requests", np.int64(2))
        metrics.set_gauge("staleness_s", np.float64(1.5))
        metrics.set_gauge("live", lambda: np.float32(3.0))
        metrics.set_info("note", "fine")
        metrics.observe("table", np.float64(0.001))
        snap = json.loads(json.dumps(metrics.snapshot()))
        assert snap["counters"]["requests"] == 2
        assert snap["gauges"]["staleness_s"] == 1.5
        assert snap["gauges"]["live"] == 3.0
        assert snap["tiers"]["table"]["count"] == 1.0
