"""Tests for the multi-process open-loop network load generator."""

from __future__ import annotations

import socket

import pytest

from repro.serving import (
    GatewayConfig,
    GatewayThread,
    LoadMix,
    MatchingService,
    MatchingServiceConfig,
    ModelStore,
    NetLoadConfig,
    fetch_json,
    run_netload,
    wait_for_gateway,
)

K = 5


@pytest.fixture()
def gateway(serving_bundle):
    service = MatchingService(
        ModelStore(serving_bundle),
        MatchingServiceConfig(default_k=K, cache_size=0),
    )
    config = GatewayConfig(port=0, max_batch=8, max_wait_ms=2.0, default_k=K)
    with GatewayThread(service, config) as gw:
        yield gw


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestControlPlane:
    def test_fetch_json_healthz(self, gateway):
        body = fetch_json("127.0.0.1", gateway.port, "/healthz")
        assert body["status"] == "ok"

    def test_fetch_json_rejects_error_status(self, gateway):
        with pytest.raises(ValueError, match="404"):
            fetch_json("127.0.0.1", gateway.port, "/nope")

    def test_wait_for_gateway_returns_health(self, gateway):
        body = wait_for_gateway("127.0.0.1", gateway.port, timeout_s=5.0)
        assert body["store_version"] == 0

    def test_wait_for_gateway_times_out_on_dead_port(self):
        with pytest.raises(TimeoutError, match="not healthy"):
            wait_for_gateway("127.0.0.1", _free_port(), timeout_s=0.3)


class TestRunNetload:
    def test_single_process_report(self, gateway, tiny_split):
        train, _ = tiny_split
        report = run_netload(
            train,
            NetLoadConfig(
                port=gateway.port,
                n_requests=80,
                rate=2000.0,
                n_processes=1,
                connections=4,
                k=K,
            ),
            seed=0,
        )
        assert report["n_requests"] == 80
        assert report["errors"] == 0
        assert report["ok"] + report["shed"] == 80
        assert report["shed"] == 0  # default high water is far away
        assert report["qps"] > 0
        assert report["processes"] == 1
        assert set(report["latency_s"]) == {"p50", "p95", "p99"}
        assert report["latency_s"]["p50"] <= report["latency_s"]["p99"]
        # The server-side view rides along: every request was admitted
        # through the coalescer.
        counters = report["gateway"]["counters"]
        assert counters["gateway_requests"] == 80
        assert counters["gateway_coalesced_requests"] == 80
        assert 1 <= counters["gateway_coalesced_batches"] <= 80

    def test_multi_process_workers(self, gateway, tiny_split):
        train, _ = tiny_split
        report = run_netload(
            train,
            NetLoadConfig(
                port=gateway.port,
                n_requests=60,
                rate=2000.0,
                n_processes=2,
                connections=4,
                k=K,
            ),
            mix=LoadMix(0.5, 0.2, 0.2, 0.1),
            seed=1,
        )
        assert report["processes"] == 2
        assert report["errors"] == 0
        assert report["ok"] == 60

    def test_replays_explicit_payloads(self, gateway, tiny_split):
        train, _ = tiny_split
        report = run_netload(
            train,
            NetLoadConfig(
                port=gateway.port,
                n_requests=10,  # ignored when payloads are given
                rate=1000.0,
                n_processes=1,
                connections=2,
            ),
            payloads=[{"item_id": 0, "k": 3}] * 20,
        )
        assert report["n_requests"] == 20
        assert report["ok"] == 20
        assert report["errors"] == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NetLoadConfig(n_requests=0).validate()
        with pytest.raises(ValueError):
            NetLoadConfig(rate=0.0).validate()
        with pytest.raises(ValueError):
            NetLoadConfig(port=0).validate()
