"""Tests for the nightly refresh daemon: retries, breaker, drift gate."""

import numpy as np
import pytest

from repro.core.sgns import SGNSConfig
from repro.graph.hbgp import HBGPConfig, hbgp_partition
from repro.serving import (
    MatchingService,
    MatchingServiceConfig,
    RefreshConfig,
    RefreshDaemon,
    ShardedMatchingService,
    ShardedModelStore,
    bootstrap_day_source,
    failing_build_hook,
)
from repro.serving import refresh as refresh_module

#: Cheap continuation training so each cycle stays fast.
TRAIN = SGNSConfig(dim=12, epochs=1, window=2, negatives=2, seed=5)


def fast_config(**overrides) -> RefreshConfig:
    defaults = dict(
        interval=0.05,
        max_retries=2,
        backoff_base=0.01,
        backoff_cap=0.05,
        jitter=0.0,
        train_config=TRAIN,
        build_kwargs={"n_cells": 8, "table_coverage": 0.8, "seed": 3},
    )
    defaults.update(overrides)
    return RefreshConfig(**defaults)


@pytest.fixture()
def service(fresh_store):
    return MatchingService(
        fresh_store, MatchingServiceConfig(default_k=10, cache_ttl=None)
    )


@pytest.fixture()
def day_source(tiny_split):
    train, _ = tiny_split
    return bootstrap_day_source(train, seed=2)


class TestConfig:
    def test_defaults_valid(self):
        RefreshConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("interval", 0.0),
            ("max_retries", -1),
            ("backoff_base", 0.0),
            ("backoff_factor", 0.5),
            ("jitter", 1.5),
            ("failure_threshold", 0),
            ("drift_threshold", -0.1),
        ],
    )
    def test_invalid_rejected(self, field, value):
        config = RefreshConfig()
        setattr(config, field, value)
        with pytest.raises(ValueError):
            config.validate()


class TestSingleCycle:
    def test_cycle_promotes_new_generation(self, service, day_source):
        daemon = RefreshDaemon(service, day_source, fast_config())
        assert service.store.version == 0
        report = daemon.run_once()
        assert report.promoted
        assert report.attempts == 1
        assert report.versions == 1
        assert service.store.version == 1
        assert set(report.phase_seconds) == {
            "ingest", "train", "build", "promote"
        }
        # The expensive work happens outside the swap.
        assert report.phase_seconds["promote"] < report.phase_seconds["build"]

    def test_served_results_come_from_new_generation(self, service, day_source):
        daemon = RefreshDaemon(service, day_source, fast_config())
        item = int(service.store.current().table.item_ids[0])
        assert service.recommend(item).version == 0
        daemon.run_once()
        assert service.recommend(item).version == 1

    def test_metrics_surface_in_service_snapshot(self, service, day_source):
        daemon = RefreshDaemon(service, day_source, fast_config())
        daemon.run_once()
        snap = service.snapshot()
        assert snap["counters"]["refresh_cycles"] == 1
        assert snap["counters"]["refresh_promotions"] == 1
        for phase in ("ingest", "train", "build", "promote", "cycle"):
            assert snap["tiers"][f"refresh_{phase}"]["count"] == 1.0
        assert snap["gauges"]["refresh_consecutive_failures"] == 0.0
        assert snap["gauges"]["refresh_breaker_open"] == 0.0
        assert snap["gauges"]["refresh_generation_age_s"] >= 0.0
        assert snap["info"]["refresh_last_error"] is None

    def test_status_shape(self, service, day_source):
        daemon = RefreshDaemon(service, day_source, fast_config())
        daemon.run_once()
        status = daemon.status()
        assert status["cycles"] == 1
        assert status["store_version"] == 1
        assert not status["breaker_open"]
        assert status["history"][0]["promoted"]


class TestFailureIsolation:
    def test_injected_failure_recovers_on_retry(self, service, day_source):
        hook = failing_build_hook({"build": 1})
        daemon = RefreshDaemon(
            service, day_source, fast_config(), fault_hook=hook
        )
        report = daemon.run_once()
        assert report.promoted
        assert report.attempts == 2
        assert service.store.version == 1
        assert service.metrics.counter("refresh_retries") == 1

    def test_exhausted_retries_keep_old_generation(self, service, day_source):
        hook = failing_build_hook({"build": 99})
        daemon = RefreshDaemon(
            service, day_source, fast_config(max_retries=1), fault_hook=hook
        )
        item = int(service.store.current().table.item_ids[0])
        report = daemon.run_once()
        assert not report.promoted
        assert report.attempts == 2
        assert "injected build failure" in report.error
        # The previous bundle is untouched and still serving.
        assert service.store.version == 0
        assert service.recommend(item).version == 0
        assert service.snapshot()["info"]["refresh_last_error"] == report.error

    def test_ingest_failures_also_isolated(self, service, day_source):
        hook = failing_build_hook({"ingest": 1})
        daemon = RefreshDaemon(
            service, day_source, fast_config(), fault_hook=hook
        )
        report = daemon.run_once()
        assert report.promoted
        assert report.attempts == 2

    def test_circuit_breaker_opens_and_resets(self, service, day_source):
        hook = failing_build_hook({"build": 2})
        daemon = RefreshDaemon(
            service,
            day_source,
            fast_config(max_retries=0, failure_threshold=2),
            fault_hook=hook,
        )
        assert not daemon.run_once().promoted
        assert not daemon.breaker_open
        assert not daemon.run_once().promoted
        assert daemon.breaker_open
        # While open, cycles are skipped without touching the pipeline.
        skipped = daemon.run_once()
        assert skipped.aborted_by == "circuit_breaker"
        assert skipped.attempts == 0
        assert service.store.version == 0
        assert service.snapshot()["gauges"]["refresh_breaker_open"] == 1.0
        # Reset: the hook has burned through its injected failures by now.
        daemon.reset_breaker()
        assert daemon.run_once().promoted
        assert service.store.version == 1


class TestDriftGate:
    def test_excessive_drift_aborts_promotion(self, service, day_source):
        daemon = RefreshDaemon(
            service, day_source, fast_config(drift_threshold=1e-12)
        )
        report = daemon.run_once()
        assert not report.promoted
        assert report.aborted_by == "drift_gate"
        assert report.attempts == 1  # deterministic: no point retrying
        assert report.drift > 1e-12
        assert service.store.version == 0
        assert service.metrics.counter("refresh_drift_aborts") == 1

    def test_permissive_threshold_promotes(self, service, day_source):
        daemon = RefreshDaemon(
            service, day_source, fast_config(drift_threshold=10.0)
        )
        report = daemon.run_once()
        assert report.promoted
        assert 0.0 <= report.drift <= 10.0


class TestBackgroundThread:
    def test_daemon_refreshes_on_interval(self, service, day_source):
        daemon = RefreshDaemon(service, day_source, fast_config(interval=0.01))
        with daemon:
            assert daemon.wait_for_cycles(2, timeout=60.0)
        assert service.store.version >= 2
        assert not daemon.status()["running"]

    def test_start_is_idempotent(self, service, day_source):
        daemon = RefreshDaemon(service, day_source, fast_config(interval=30.0))
        daemon.start()
        daemon.start()
        daemon.stop()


class TestShardedRefresh:
    @pytest.fixture()
    def sharded_service(self, fitted_sisg, tiny_split):
        train, _ = tiny_split
        partition = hbgp_partition(train, HBGPConfig(n_partitions=2))
        store = ShardedModelStore.build(
            fitted_sisg.model, train, partition,
            n_cells=8, table_coverage=0.8, seed=0,
        )
        return ShardedMatchingService(
            store, MatchingServiceConfig(default_k=10, cache_ttl=None)
        )

    def test_cycle_promotes_every_shard(self, sharded_service, day_source):
        daemon = RefreshDaemon(sharded_service, day_source, fast_config())
        report = daemon.run_once()
        assert report.promoted
        assert report.versions == [1, 1]
        assert sharded_service.store.versions == [1, 1]

    def test_failed_build_never_tears_promotion(
        self, sharded_service, day_source, monkeypatch
    ):
        """A failure after shard 0's bundle is built must leave *every*
        shard on the old generation — builds all land before any swap."""
        calls = {"n": 0}
        real = refresh_module.build_shard_bundle

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:  # second shard of the first attempt
                raise RuntimeError("shard build exploded")
            return real(*args, **kwargs)

        monkeypatch.setattr(refresh_module, "build_shard_bundle", flaky)
        daemon = RefreshDaemon(
            sharded_service, day_source, fast_config(max_retries=0)
        )
        report = daemon.run_once()
        assert not report.promoted
        assert sharded_service.store.versions == [0, 0]
        # Next cycle (no injected failure left) promotes both shards.
        report = daemon.run_once()
        assert report.promoted
        assert sharded_service.store.versions == [1, 1]


class TestHelpers:
    def test_bootstrap_day_source_reshuffles_sessions(self, tiny_split):
        train, _ = tiny_split
        source = bootstrap_day_source(train, seed=0)
        day1, day2 = source(1), source(2)
        assert day1.n_items == train.n_items
        assert day1.n_sessions == train.n_sessions
        ids1 = [id(s) for s in day1.sessions]
        ids2 = [id(s) for s in day2.sessions]
        assert ids1 != ids2

    def test_failing_build_hook_counts_down(self):
        hook = failing_build_hook({"build": 2})
        with pytest.raises(RuntimeError):
            hook("build", 1)
        hook("ingest", 1)  # other phases unaffected
        with pytest.raises(RuntimeError):
            hook("build", 2)
        hook("build", 3)  # exhausted: passes

    def test_update_partition_rejects_moves(self, fitted_sisg, tiny_split):
        train, _ = tiny_split
        partition = hbgp_partition(train, HBGPConfig(n_partitions=2))
        store = ShardedModelStore.build(
            fitted_sisg.model, train, partition,
            n_cells=8, table_coverage=1.0, seed=0,
        )
        moved = store.item_partition.copy()
        moved[0] = 1 - moved[0]
        with pytest.raises(ValueError):
            store.update_partition(moved)
        with pytest.raises(ValueError):
            store.update_partition(store.item_partition[:-1])
        extended = np.concatenate([store.item_partition, [0, 1]])
        store.update_partition(extended)
        assert store.shard_of(len(extended) - 1) == 1

    def test_update_partition_allow_moves(self, fitted_sisg, tiny_split):
        """The streaming re-route path: an explicit opt-in may re-home
        existing items (the applier rebuilds both endpoint shards first)."""
        train, _ = tiny_split
        partition = hbgp_partition(train, HBGPConfig(n_partitions=2))
        store = ShardedModelStore.build(
            fitted_sisg.model, train, partition,
            n_cells=8, table_coverage=1.0, seed=0,
        )
        moved = store.item_partition.copy()
        moved[0] = 1 - moved[0]
        store.update_partition(moved, allow_moves=True)
        assert store.shard_of(0) == moved[0]
        # Shrinking the map stays invalid even with moves allowed.
        with pytest.raises(ValueError):
            store.update_partition(moved[:-1], allow_moves=True)
        # And a shard id with no bundle behind it is rejected.
        bad = moved.copy()
        bad[1] = 9
        with pytest.raises(ValueError):
            store.update_partition(bad, allow_moves=True)
