"""Tests for the matching service: fallback chain, cache, swap, batching."""

import threading

import numpy as np
import pytest

from repro.serving import (
    LRUTTLCache,
    MatchingService,
    MatchingServiceConfig,
    MatchRequest,
    ModelStore,
    build_bundle,
)

from .test_cache import FakeClock


@pytest.fixture()
def service(fresh_store):
    return MatchingService(
        fresh_store, MatchingServiceConfig(default_k=10, cache_ttl=None)
    )


@pytest.fixture()
def uncached(fresh_store):
    return MatchingService(
        fresh_store, MatchingServiceConfig(default_k=10, cache_size=0)
    )


def warm_item(bundle) -> int:
    return int(bundle.table._items[0])


def uncovered_item(bundle) -> int:
    return next(
        int(i) for i in bundle.index.item_ids if int(i) not in bundle.table
    )


class TestFallbackChain:
    def test_warm_item_serves_from_table(self, service, serving_bundle):
        result = service.recommend(warm_item(serving_bundle))
        assert result.tier == "table"
        assert len(result.items) > 0
        np.testing.assert_array_equal(
            result.items, serving_bundle.table.topk(warm_item(serving_bundle), 10)[0]
        )

    def test_table_miss_falls_to_ann(self, service, serving_bundle):
        item = uncovered_item(serving_bundle)
        result = service.recommend(item)
        assert result.tier == "ann"
        single, _ = serving_bundle.ann.topk(item, 10)
        np.testing.assert_array_equal(result.items, single)

    def test_cold_item_uses_si_sum(self, service, tiny_split):
        train, _ = tiny_split
        request = MatchRequest(si_values=dict(train.items[5].si_values))
        result = service.recommend(request)
        assert result.tier == "cold_item"
        assert len(result.items) > 0

    def test_unknown_item_with_si_still_cold_item(self, service, tiny_split):
        train, _ = tiny_split
        request = MatchRequest(
            item_id=10**9, si_values=dict(train.items[5].si_values)
        )
        assert service.recommend(request).tier == "cold_item"

    def test_cold_user_uses_user_types(self, service, tiny_split):
        train, _ = tiny_split
        user = train.users[0]
        request = MatchRequest(gender=user.gender, age_bucket=user.age_bucket)
        result = service.recommend(request)
        assert result.tier == "cold_user"
        assert len(result.items) > 0

    def test_unknown_item_falls_to_popularity(self, service, serving_bundle):
        result = service.recommend(MatchRequest(item_id=10**9))
        assert result.tier == "popularity"
        assert len(result.items) == 10
        assert 10**9 not in result.items

    def test_empty_request_falls_to_popularity(self, service):
        assert service.recommend(MatchRequest()).tier == "popularity"

    def test_untrained_si_falls_to_popularity(self, service):
        request = MatchRequest(si_values={"brand": 987654321})
        assert service.recommend(request).tier == "popularity"

    def test_cold_user_without_user_types_falls_to_popularity(
        self, fitted_sgns, tiny_split
    ):
        # Plain SGNS trains no user-type tokens: demographics can't match.
        train, _ = tiny_split
        store = ModelStore(build_bundle(fitted_sgns.model, train, n_cells=8))
        service = MatchingService(store)
        result = service.recommend(MatchRequest(gender="F"))
        assert result.tier == "popularity"

    def test_int_shorthand(self, service, serving_bundle):
        request_result = service.recommend(
            MatchRequest(item_id=warm_item(serving_bundle))
        )
        int_result = service.recommend(warm_item(serving_bundle))
        np.testing.assert_array_equal(request_result.items, int_result.items)

    def test_invalid_k_rejected(self, service):
        with pytest.raises(ValueError):
            service.recommend(0, k=0)


class TestCaching:
    def test_repeat_request_served_from_cache(self, service, serving_bundle):
        item = warm_item(serving_bundle)
        first = service.recommend(item)
        second = service.recommend(item)
        assert not first.cached
        assert second.cached
        np.testing.assert_array_equal(first.items, second.items)
        assert service.metrics.counter("cache_hit") == 1
        assert service.metrics.counter("cache_miss") == 1

    def test_different_k_is_a_different_entry(self, service, serving_bundle):
        item = warm_item(serving_bundle)
        service.recommend(item, k=5)
        assert not service.recommend(item, k=7).cached

    def test_ttl_expiry_through_service(self, fresh_store):
        clock = FakeClock()
        cache = LRUTTLCache(maxsize=64, ttl=30.0, clock=clock)
        service = MatchingService(fresh_store, cache=cache)
        item = warm_item(fresh_store.current())
        service.recommend(item)
        assert service.recommend(item).cached
        clock.advance(31.0)
        assert not service.recommend(item).cached
        assert cache.expirations == 1

    def test_cache_disabled(self, uncached, serving_bundle):
        item = warm_item(serving_bundle)
        uncached.recommend(item)
        assert not uncached.recommend(item).cached
        assert uncached.cache is None

    def test_cache_hits_are_timed_and_observed(self, service, serving_bundle):
        """Regression: hits used to return latency=0.0 and skip every
        histogram, so snapshot quantiles described only the miss path."""
        item = warm_item(serving_bundle)
        service.recommend(item)
        hit = service.recommend(item)
        assert hit.cached
        assert hit.latency > 0.0
        cache_tier = service.snapshot()["tiers"]["cache"]
        assert cache_tier["count"] == 1.0
        assert cache_tier["p50"] > 0.0

    def test_batch_cache_hits_are_timed_and_observed(
        self, service, serving_bundle
    ):
        item = warm_item(serving_bundle)
        service.recommend_batch([item], 10)
        (hit,) = service.recommend_batch([item], 10)
        assert hit.cached
        assert hit.latency > 0.0
        assert service.snapshot()["tiers"]["cache"]["count"] == 1.0

    def test_swap_invalidates_cache(self, service, serving_bundle):
        item = warm_item(serving_bundle)
        assert service.recommend(item).version == 0
        service.recommend(item)
        service.store.swap(serving_bundle)
        result = service.recommend(item)
        assert not result.cached  # version is part of the key
        assert result.version == 1


class TestBatching:
    def test_batch_matches_single(self, fresh_store, tiny_split, serving_bundle):
        train, _ = tiny_split
        requests = [
            warm_item(serving_bundle),
            uncovered_item(serving_bundle),
            MatchRequest(si_values=dict(train.items[5].si_values)),
            MatchRequest(item_id=10**9),
        ]
        batch_service = MatchingService(
            fresh_store, MatchingServiceConfig(default_k=10, cache_size=0)
        )
        single_service = MatchingService(
            fresh_store, MatchingServiceConfig(default_k=10, cache_size=0)
        )
        batched = batch_service.recommend_batch(requests, 10)
        for request, result in zip(requests, batched):
            single = single_service.recommend(request, 10)
            assert result.tier == single.tier
            np.testing.assert_array_equal(result.items, single.items)

    def test_ann_requests_are_micro_batched(self, uncached, serving_bundle):
        uncovered = [
            int(i)
            for i in serving_bundle.index.item_ids
            if int(i) not in serving_bundle.table
        ][:8]
        results = uncached.recommend_batch(uncovered, 10)
        assert all(r.tier == "ann" for r in results)
        for item, result in zip(uncovered, results):
            np.testing.assert_array_equal(
                result.items, serving_bundle.ann.topk(int(item), 10)[0]
            )

    def test_batch_populates_cache(self, service, serving_bundle):
        items = [warm_item(serving_bundle), uncovered_item(serving_bundle)]
        service.recommend_batch(items, 10)
        assert service.recommend(items[0], 10).cached
        assert service.recommend(items[1], 10).cached


class TestHotSwapAtomicity:
    def test_no_failures_under_interleaved_queries(
        self, fitted_sisg, tiny_split, serving_bundle
    ):
        train, _ = tiny_split
        store = ModelStore(serving_bundle)
        service = MatchingService(
            store, MatchingServiceConfig(default_k=10, cache_size=0)
        )
        other = build_bundle(
            fitted_sisg.model, train, n_cells=12, table_coverage=0.8, seed=1
        )
        requests = [
            warm_item(serving_bundle),
            uncovered_item(serving_bundle),
            MatchRequest(si_values=dict(train.items[5].si_values)),
            MatchRequest(item_id=10**9),
        ]
        failures: list[Exception] = []
        versions: set[int] = set()
        stop = threading.Event()

        def hammer() -> None:
            while not stop.is_set():
                for request in requests:
                    try:
                        result = service.recommend(request, 10)
                        versions.add(result.version)
                        assert len(result.items) > 0
                    except Exception as exc:  # noqa: BLE001 - the test's point
                        failures.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for bundle in (other, serving_bundle, other, serving_bundle):
            store.swap(bundle)
        stop.set()
        for thread in threads:
            thread.join()

        assert failures == []
        assert versions <= {0, 1, 2, 3, 4}
        assert len(versions) >= 2  # queries actually observed a swap
        assert store.version == 4


class TestMetricsWiring:
    def test_request_accounting(self, service, serving_bundle, tiny_split):
        train, _ = tiny_split
        service.recommend(warm_item(serving_bundle))
        service.recommend(warm_item(serving_bundle))  # cache hit
        service.recommend(uncovered_item(serving_bundle))
        service.recommend(MatchRequest(si_values=dict(train.items[5].si_values)))
        service.recommend(MatchRequest(item_id=10**9))
        snap = service.snapshot()
        assert snap["counters"]["requests"] == 5
        assert snap["counters"]["cache_hit"] == 1
        assert snap["counters"]["cache_miss"] == 4
        tier_counts = {t: s["count"] for t, s in snap["tiers"].items()}
        # 4 resolved requests + 1 cache hit (timed under the cache tier).
        assert sum(tier_counts.values()) == 5.0
        assert tier_counts["table"] == 1.0
        assert tier_counts["cache"] == 1.0
        assert snap["cache_hit_rate"] == pytest.approx(0.2)
        assert snap["store_version"] == 0
        assert snap["cache"]["size"] == 4

    def test_error_counter(self, service, monkeypatch):
        def boom(*_args, **_kwargs):
            raise RuntimeError("index exploded")

        monkeypatch.setattr(service, "_resolve", boom)
        with pytest.raises(RuntimeError):
            service.recommend(0)
        assert service.metrics.counter("errors") == 1

    def test_latency_recorded(self, uncached, serving_bundle):
        uncached.recommend(warm_item(serving_bundle))
        table = uncached.metrics.snapshot()["tiers"]["table"]
        assert table["p50"] > 0.0


class TestMatchRequest:
    def test_cache_key_is_order_stable(self):
        a = MatchRequest(si_values={"brand": 1, "shop": 2})
        b = MatchRequest(si_values={"shop": 2, "brand": 1})
        assert a.cache_key() == b.cache_key()

    def test_cache_key_distinguishes_fields(self):
        assert MatchRequest(item_id=1).cache_key() != MatchRequest(
            item_id=2
        ).cache_key()
        assert (
            MatchRequest(gender="F").cache_key()
            != MatchRequest(age_bucket="25-30").cache_key()
        )
