"""Tests for HBGP-sharded serving: bundles, dispatcher, worker pool."""

import threading

import numpy as np
import pytest

from repro.core.ann import IVFIndex
from repro.core.model import EmbeddingModel
from repro.core.similarity import SimilarityIndex
from repro.core.vocab import TokenKind, Vocabulary
from repro.graph.hbgp import HBGPConfig, PartitionResult, hbgp_partition
from repro.serving import (
    MatchingService,
    MatchingServiceConfig,
    MatchRequest,
    ModelStore,
    ShardedMatchingService,
    ShardedModelStore,
    ShardWorkerPool,
    build_bundle,
    build_shard_bundle,
    build_shard_bundles,
    evaluate_service_hitrate,
    merge_topk,
)

N_SHARDS = 3
K = 10


@pytest.fixture(scope="module")
def partition(tiny_split):
    train, _ = tiny_split
    return hbgp_partition(train, HBGPConfig(n_partitions=N_SHARDS))


@pytest.fixture(scope="module")
def exact_flat_bundle(fitted_sisg, tiny_split):
    """Monolithic bundle with exhaustive settings (the equivalence oracle)."""
    train, _ = tiny_split
    return build_bundle(
        fitted_sisg.model, train, n_cells=1, table_coverage=1.0, seed=0
    )


@pytest.fixture(scope="module")
def exact_shard_store(fitted_sisg, tiny_split, partition):
    """Sharded store built with the same exhaustive settings."""
    train, _ = tiny_split
    return ShardedModelStore.build(
        fitted_sisg.model, train, partition, n_cells=1, table_coverage=1.0, seed=0
    )


def fresh_pair(exact_flat_bundle, exact_shard_store):
    """Fresh (unsharded, sharded) services over the shared builds."""
    config = MatchingServiceConfig(default_k=K, cache_size=0)
    unsharded = MatchingService(ModelStore(exact_flat_bundle), config)
    sharded = ShardedMatchingService(exact_shard_store, config)
    return unsharded, sharded


def request_mix(train) -> list:
    """One request per routing path, plus a warm item per shard."""
    return [
        MatchRequest(item_id=0),
        MatchRequest(item_id=train.n_items // 2),
        MatchRequest(item_id=train.n_items - 1),
        MatchRequest(si_values=dict(train.items[3].si_values)),
        MatchRequest(gender="F", age_bucket="25-30"),
        MatchRequest(gender="M", purchase_power="high"),
        MatchRequest(item_id=10**9),  # unknown -> popularity
    ]


class TestMergeTopk:
    def test_merges_by_score(self):
        parts = [
            (np.array([1, 2]), np.array([0.9, 0.2])),
            (np.array([3, 4]), np.array([0.5, 0.1])),
        ]
        items, scores = merge_topk(parts, 3)
        np.testing.assert_array_equal(items, [1, 3, 2])
        np.testing.assert_allclose(scores, [0.9, 0.5, 0.2])

    def test_drops_pads_and_nan(self):
        parts = [
            (np.array([1, -1]), np.array([0.9, np.nan])),
            (np.array([2, -1]), np.array([np.nan, np.nan])),
        ]
        items, scores = merge_topk(parts, 5)
        np.testing.assert_array_equal(items, [1])

    def test_ties_break_by_item_id(self):
        parts = [
            (np.array([7, 3]), np.array([0.5, 0.5])),
            (np.array([5]), np.array([0.5])),
        ]
        items, _ = merge_topk(parts, 3)
        np.testing.assert_array_equal(items, [3, 5, 7])

    def test_excludes_item(self):
        parts = [(np.array([1, 2, 3]), np.array([0.9, 0.8, 0.7]))]
        items, _ = merge_topk(parts, 3, exclude_item=1)
        np.testing.assert_array_equal(items, [2, 3])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            merge_topk([(np.array([1]), np.array([0.5]))], 0)


class TestShardBundles:
    def test_tables_partition_the_catalogue(self, exact_shard_store):
        """Shard tables are disjoint and union to the full item set."""
        seen: list[int] = []
        for shard in range(exact_shard_store.n_shards):
            seen.extend(
                int(i) for i in exact_shard_store.current(shard).table.item_ids
            )
        assert len(seen) == len(set(seen))
        n_items = len(exact_shard_store.item_partition)
        assert set(seen) == set(range(n_items))

    def test_rows_match_monolithic_table(
        self, exact_flat_bundle, exact_shard_store
    ):
        """A shard's table row is exactly the monolithic table's row."""
        for shard in range(exact_shard_store.n_shards):
            table = exact_shard_store.current(shard).table
            for item in table.item_ids[:5]:
                got_ids, got_scores = table.topk(int(item), K)
                want_ids, want_scores = exact_flat_bundle.table.topk(int(item), K)
                np.testing.assert_array_equal(got_ids, want_ids)
                np.testing.assert_allclose(got_scores, want_scores)

    def test_coverage_union_matches_monolithic(self, fitted_sisg, tiny_split, partition):
        """Partial coverage: union of shard tables == monolithic table.

        Regression for the coverage cut: it must be taken in one global
        ordering and intersected per shard, not recomputed per shard.
        """
        train, _ = tiny_split
        coverage = 0.7
        flat = build_bundle(
            fitted_sisg.model, train, n_cells=1, table_coverage=coverage, seed=0
        )
        bundles, _assignment = build_shard_bundles(
            fitted_sisg.model, train, partition,
            n_cells=1, table_coverage=coverage, seed=0,
        )
        union = {int(i) for b in bundles for i in b.table.item_ids}
        assert union == {int(i) for i in flat.table.item_ids}

    def test_popularity_slices_merge_to_global(
        self, exact_flat_bundle, exact_shard_store
    ):
        """Per-shard popularity slices merge back into the global ranking."""
        bundles = exact_shard_store.snapshot()
        merged_items, merged_scores = merge_topk(
            [(b.popular_items, b.popular_scores) for b in bundles], 20
        )
        flat_items = exact_flat_bundle.popular_items[:20]
        flat_scores = exact_flat_bundle.popular_scores[:20]
        # The global ranking is stable-argsort (id-ascending on count
        # ties), which is exactly merge_topk's tie rule.
        np.testing.assert_array_equal(merged_items, flat_items)
        np.testing.assert_allclose(merged_scores, flat_scores)

    def test_empty_shard_rejected(self, fitted_sisg, tiny_split):
        train, _ = tiny_split
        with pytest.raises(ValueError):
            build_shard_bundle(
                fitted_sisg.model, train, np.array([], dtype=np.int64)
            )

    def test_serving_assignment_owns_every_item(self, partition):
        assignment = partition.serving_assignment()
        assert np.all(assignment >= 0)
        assert np.all(assignment < partition.n_partitions)

    def test_serving_assignment_maps_orphans_deterministically(self):
        result = PartitionResult(
            item_partition=np.array([0, -1, 1, -1, -1]),
            leaf_partition=np.array([0, 1]),
            partition_frequency=np.array([3.0, 2.0]),
            cut_weight=0.0,
            total_weight=1.0,
        )
        assignment = result.serving_assignment()
        np.testing.assert_array_equal(assignment, [0, 1, 1, 1, 0])
        np.testing.assert_array_equal(result.items_of(0), [0, 4])


class TestRoutingEquivalence:
    def test_scatter_gather_matches_unsharded(
        self, tiny_split, exact_flat_bundle, exact_shard_store
    ):
        """Full coverage + exhaustive ANN: identical (ids, scores, tier)."""
        train, _ = tiny_split
        unsharded, sharded = fresh_pair(exact_flat_bundle, exact_shard_store)
        for request in request_mix(train):
            want = unsharded.recommend(request, K)
            got = sharded.recommend(request, K)
            assert got.tier == want.tier, request
            np.testing.assert_array_equal(got.items, want.items)
            np.testing.assert_allclose(got.scores, want.scores)

    def test_batch_matches_single(
        self, tiny_split, exact_flat_bundle, exact_shard_store
    ):
        train, _ = tiny_split
        _unsharded, sharded = fresh_pair(exact_flat_bundle, exact_shard_store)
        requests = request_mix(train)
        batched = sharded.recommend_batch(requests, K)
        for request, from_batch in zip(requests, batched):
            single = sharded.recommend(request, K)
            assert from_batch.tier == single.tier
            np.testing.assert_array_equal(from_batch.items, single.items)
            np.testing.assert_allclose(from_batch.scores, single.scores)

    def test_partial_coverage_ann_tier_matches(
        self, fitted_sisg, tiny_split, partition
    ):
        """Uncovered items scatter to the ANN tier and still match."""
        train, _ = tiny_split
        config = MatchingServiceConfig(default_k=K, cache_size=0)
        flat = build_bundle(
            fitted_sisg.model, train, n_cells=1, table_coverage=0.8, seed=0
        )
        unsharded = MatchingService(ModelStore(flat), config)
        store = ShardedModelStore.build(
            fitted_sisg.model, train, partition,
            n_cells=1, table_coverage=0.8, seed=0,
        )
        sharded = ShardedMatchingService(store, config)
        uncovered = [
            int(i) for i in flat.index.item_ids if int(i) not in flat.table
        ][:8]
        assert uncovered
        for item in uncovered:
            want = unsharded.recommend(item, K)
            got = sharded.recommend(item, K)
            assert want.tier == got.tier == "ann"
            np.testing.assert_array_equal(got.items, want.items)
            np.testing.assert_allclose(got.scores, want.scores)

    def test_knows_item(self, tiny_split, exact_flat_bundle, exact_shard_store):
        train, _ = tiny_split
        _unsharded, sharded = fresh_pair(exact_flat_bundle, exact_shard_store)
        assert sharded.knows_item(0)
        assert not sharded.knows_item(train.n_items + 50)
        assert not sharded.knows_item(10**9)

    def test_serving_hitrate_matches_unsharded(
        self, tiny_split, exact_flat_bundle, exact_shard_store
    ):
        """Serving-side HR@K through the dispatcher == unsharded HR@K."""
        _train, test = tiny_split
        unsharded, sharded = fresh_pair(exact_flat_bundle, exact_shard_store)
        flat_hr = evaluate_service_hitrate(unsharded, test, ks=(5, 10))
        shard_hr = evaluate_service_hitrate(sharded, test, ks=(5, 10))
        assert shard_hr.hit_rates == flat_hr.hit_rates
        assert 0.0 <= shard_hr.hit_rates[10] <= 1.0


class TestTieHeavyEquivalence:
    """Scatter-gather must equal the unsharded index under massive ties.

    Sixty items share five embedding directions, so every query sees
    ~12-way score ties that straddle shard boundaries.  Equivalence then
    rests entirely on both sides ordering by ``(-score, id)``: the
    unsharded index via its tie-break pass, the sharded path via
    ``merge_topk``'s tie rule.  (The duplicate-heavy vectors also push
    k-means through its empty-cluster re-seed path on every build.)
    """

    N_ITEMS = 60
    N_BASES = 5

    @pytest.fixture(scope="class")
    def tie_world(self):
        rng = np.random.default_rng(7)
        base = rng.normal(size=(self.N_BASES, 8))
        vocab = Vocabulary()
        for i in range(self.N_ITEMS):
            vocab.add(f"item_{i}", TokenKind.ITEM, payload=i)
        w_in = np.vstack(
            [base[i % self.N_BASES] for i in range(self.N_ITEMS)]
        )
        model = EmbeddingModel(vocab, w_in, w_in.copy())
        full = SimilarityIndex(model, mode="cosine")
        full_ivf = IVFIndex(full, n_cells=4, n_probe=4, seed=0)
        shard_anns = []
        for shard in range(N_SHARDS):
            owned = np.flatnonzero(
                np.arange(self.N_ITEMS) % N_SHARDS == shard
            ).astype(np.int64)
            shard_anns.append(
                IVFIndex(full.restrict(owned), n_cells=4, n_probe=4, seed=0)
            )
        return full, full_ivf, shard_anns

    def test_fixture_is_tie_heavy(self, tie_world):
        _full, full_ivf, _anns = tie_world
        _ids, scores = full_ivf.topk(0, K)
        assert len(np.unique(scores)) < len(scores)

    def test_scatter_matches_unsharded(self, tie_world):
        full, full_ivf, shard_anns = tie_world
        for item in range(0, self.N_ITEMS, 7):
            want_ids, want_scores = full_ivf.topk(item, K)
            vector = full.query_vector(item)[None, :]
            exclude = np.asarray([item], dtype=np.int64)
            parts = []
            for ann in shard_anns:
                ids, scores = ann.topk_by_vector_batch(
                    vector, K, exclude_items=exclude
                )
                parts.append((ids[0], scores[0]))
            got_ids, got_scores = merge_topk(parts, K, exclude_item=item)
            np.testing.assert_array_equal(got_ids, want_ids)
            np.testing.assert_array_equal(got_scores, want_scores)

    def test_batch_matches_single_on_ties(self, tie_world):
        _full, full_ivf, _anns = tie_world
        queries = np.arange(0, self.N_ITEMS, 5, dtype=np.int64)
        batch_ids, batch_scores = full_ivf.topk_batch(queries, K)
        for row, item in enumerate(queries):
            single_ids, single_scores = full_ivf.topk(int(item), K)
            valid = batch_ids[row] >= 0
            np.testing.assert_array_equal(batch_ids[row][valid], single_ids)
            np.testing.assert_array_equal(
                batch_scores[row][valid], single_scores
            )


class TestShardSwaps:
    def make_service(self, store, cache_size=256):
        return ShardedMatchingService(
            store, MatchingServiceConfig(default_k=K, cache_size=cache_size)
        )

    def test_swap_touches_one_shard(self, fitted_sisg, tiny_split, partition):
        train, _ = tiny_split
        store = ShardedModelStore.build(
            fitted_sisg.model, train, partition, n_cells=1, seed=0
        )
        before = store.snapshot()
        store.refresh_shard(0, fitted_sisg.model, train, n_cells=1, seed=1)
        after = store.snapshot()
        assert store.versions == [1, 0, 0]
        assert after[0] is not before[0]
        for shard in range(1, store.n_shards):
            assert after[shard] is before[shard]

    def test_table_cache_survives_other_shards_swap(
        self, fitted_sisg, tiny_split, partition
    ):
        """Swapping shard 0 must not cold-start shard 1's cached answers."""
        train, _ = tiny_split
        store = ShardedModelStore.build(
            fitted_sisg.model, train, partition, n_cells=1, seed=0
        )
        service = self.make_service(store)
        other_item = int(store.current(1).table.item_ids[0])
        service.recommend(other_item, K)
        service.swap_shard(0, store.current(0))
        assert service.recommend(other_item, K).cached

    def test_scattered_cache_invalidated_by_any_swap(
        self, fitted_sisg, tiny_split, partition
    ):
        train, _ = tiny_split
        store = ShardedModelStore.build(
            fitted_sisg.model, train, partition, n_cells=1, seed=0
        )
        service = self.make_service(store)
        cold = MatchRequest(si_values=dict(train.items[3].si_values))
        service.recommend(cold, K)
        assert service.recommend(cold, K).cached
        service.swap_shard(2, store.current(2))
        assert not service.recommend(cold, K).cached

    def test_swap_under_concurrent_requests(
        self, fitted_sisg, tiny_split, partition
    ):
        """Hammer shards 1+2 while shard 0 swaps repeatedly: no failures,
        other shards' generations and answers untouched."""
        train, _ = tiny_split
        store = ShardedModelStore.build(
            fitted_sisg.model, train, partition, n_cells=1, seed=0
        )
        service = self.make_service(store, cache_size=0)
        probes = [
            int(store.current(shard).table.item_ids[0]) for shard in (1, 2)
        ]
        baseline = {
            item: service.recommend(item, K).items.copy() for item in probes
        }
        replacement = store.current(0)
        failures: list[Exception] = []
        stop = threading.Event()

        def hammer(item: int) -> None:
            while not stop.is_set():
                try:
                    result = service.recommend(item, K)
                    np.testing.assert_array_equal(result.items, baseline[item])
                    assert result.version == 0  # owning shard never swapped
                except Exception as exc:  # pragma: no cover - failure path
                    failures.append(exc)
                    return

        threads = [threading.Thread(target=hammer, args=(i,)) for i in probes]
        for thread in threads:
            thread.start()
        for _ in range(20):
            service.swap_shard(0, replacement)
        stop.set()
        for thread in threads:
            thread.join()
        assert not failures
        assert store.versions[0] == 20
        assert store.versions[1:] == [0, 0]


class TestWorkerPool:
    def test_pool_matches_serial(
        self, tiny_split, exact_flat_bundle, exact_shard_store
    ):
        train, _ = tiny_split
        config = MatchingServiceConfig(default_k=K, cache_size=0)
        serial = ShardedMatchingService(exact_shard_store, config)
        with ShardWorkerPool(exact_shard_store) as pool:
            pooled = ShardedMatchingService(exact_shard_store, config, pool=pool)
            for request in request_mix(train):
                want = serial.recommend(request, K)
                got = pooled.recommend(request, K)
                assert got.tier == want.tier
                np.testing.assert_array_equal(got.items, want.items)
                np.testing.assert_allclose(got.scores, want.scores)

    def test_swap_reaches_worker(self, fitted_sisg, tiny_split, partition):
        train, _ = tiny_split
        store = ShardedModelStore.build(
            fitted_sisg.model, train, partition, n_cells=1, seed=0
        )
        with ShardWorkerPool(store) as pool:
            service = ShardedMatchingService(store, pool=pool)
            assert pool.ping() == [0, 0, 0]
            service.swap_shard(1, store.current(1))
            assert pool.ping() == store.versions == [0, 1, 0]
            # The swapped worker still answers.
            item = int(store.current(1).table.item_ids[0])
            assert len(service.recommend(item, K).items)

    def test_close_is_idempotent(self, exact_shard_store):
        pool = ShardWorkerPool(exact_shard_store)
        pool.close()
        pool.close()
        with pytest.raises(ValueError):
            pool.ping()

    def test_service_close_shuts_pool(self, exact_shard_store):
        pool = ShardWorkerPool(exact_shard_store)
        with ShardedMatchingService(exact_shard_store, pool=pool):
            pass
        with pytest.raises(ValueError):
            pool.ping()


class TestObservability:
    def test_snapshot_shape(self, tiny_split, exact_flat_bundle, exact_shard_store):
        train, _ = tiny_split
        _unsharded, sharded = fresh_pair(exact_flat_bundle, exact_shard_store)
        for request in request_mix(train):
            sharded.recommend(request, K)
        snap = sharded.snapshot()
        assert snap["n_shards"] == N_SHARDS
        assert snap["store_version"] == [0] * N_SHARDS
        assert len(snap["shards"]) == N_SHARDS
        assert snap["counters"]["requests"] == len(request_mix(train))
        table_hits = sum(
            shard["counters"].get("table_hits", 0) for shard in snap["shards"]
        )
        assert table_hits == 3  # the three warm items, each on its shard
        gathers = sum(
            shard["counters"].get("gathers", 0) for shard in snap["shards"]
        )
        assert gathers == 3 * N_SHARDS  # cold item + 2 cold users scatter
