"""Tests for the double-buffered model store and bundle building."""

import numpy as np
import pytest

from repro.serving import build_bundle, popularity_ranking
from repro.serving.store import ModelBundle


class TestPopularityRanking:
    def test_ranked_by_click_count(self, tiny_split):
        train, _ = tiny_split
        items, scores = popularity_ranking(train)
        counts = np.zeros(train.n_items, dtype=np.int64)
        for session in train.sessions:
            for item in session.items:
                counts[item] += 1
        assert counts[items[0]] == counts.max()
        assert np.all(np.diff(counts[items]) <= 0)
        assert scores.sum() == pytest.approx(counts[items].sum() / counts.sum())

    def test_max_items_truncates(self, tiny_split):
        train, _ = tiny_split
        items, scores = popularity_ranking(train, max_items=10)
        assert len(items) == 10 and len(scores) == 10

    def test_empty_sessions(self, tiny_split):
        from repro.data.schema import BehaviorDataset

        train, _ = tiny_split
        empty = BehaviorDataset(train.items, train.users, [], validate=False)
        items, scores = popularity_ranking(empty)
        assert len(items) == train.n_items
        assert np.all(scores == 0.0)


class TestBuildBundle:
    def test_full_coverage(self, fitted_sisg, tiny_split):
        train, _ = tiny_split
        bundle = build_bundle(fitted_sisg.model, train, n_cells=8, seed=0)
        assert len(bundle.table) == bundle.index.n_items
        assert bundle.version == 0
        assert len(bundle.popular_items) > 0

    def test_partial_coverage_leaves_ann_tier(self, serving_bundle):
        n_index = serving_bundle.index.n_items
        assert len(serving_bundle.table) < n_index
        uncovered = [
            int(i)
            for i in serving_bundle.index.item_ids
            if int(i) not in serving_bundle.table
        ]
        assert uncovered and all(i in serving_bundle.ann for i in uncovered)

    def test_partial_coverage_cut_follows_table_order(self, fitted_sisg, tiny_split):
        """Regression: the coverage cut comes from the *table's* row order.

        Slicing ``index.item_ids`` instead can pick items the table never
        materialized; the covered set must be a prefix of the full
        table's own rows, with rows identical to the full build.
        """
        train, _ = tiny_split
        full = build_bundle(
            fitted_sisg.model, train, n_cells=8, table_coverage=1.0, seed=0
        )
        partial = build_bundle(
            fitted_sisg.model, train, n_cells=8, table_coverage=0.6, seed=0
        )
        cut = max(1, int(len(full.table) * 0.6))
        np.testing.assert_array_equal(
            partial.table.item_ids, full.table.item_ids[:cut]
        )
        for item in partial.table.item_ids[:3]:
            got_ids, got_scores = partial.table.topk(int(item), 10)
            want_ids, want_scores = full.table.topk(int(item), 10)
            np.testing.assert_array_equal(got_ids, want_ids)
            np.testing.assert_allclose(got_scores, want_scores)

    def test_invalid_coverage(self, fitted_sisg, tiny_split):
        train, _ = tiny_split
        with pytest.raises(ValueError):
            build_bundle(fitted_sisg.model, train, table_coverage=0.0)
        with pytest.raises(ValueError):
            build_bundle(fitted_sisg.model, train, table_coverage=1.5)


class TestModelStore:
    def test_current_returns_bundle(self, fresh_store, serving_bundle):
        current = fresh_store.current()
        assert isinstance(current, ModelBundle)
        assert current.table is serving_bundle.table
        assert fresh_store.version == 0

    def test_swap_increments_version_and_returns_old(
        self, fresh_store, serving_bundle
    ):
        old = fresh_store.swap(serving_bundle)
        assert old.version == 0
        assert fresh_store.version == 1
        fresh_store.swap(serving_bundle)
        assert fresh_store.version == 2

    def test_swap_overrides_stale_version_stamp(self, fresh_store, serving_bundle):
        from dataclasses import replace

        stale = replace(serving_bundle, version=-5)
        fresh_store.swap(stale)
        assert fresh_store.version == 1  # strictly increasing regardless

    def test_snapshot_survives_swap(self, fresh_store, serving_bundle):
        snapshot = fresh_store.current()
        fresh_store.swap(serving_bundle)
        # The old snapshot still answers queries consistently.
        item = int(snapshot.table._items[0])
        items, scores = snapshot.table.topk(item, 5)
        assert len(items) == len(scores)
        assert snapshot.version == 0
        assert fresh_store.current().version == 1

    def test_refresh_builds_and_swaps(self, fitted_sisg, tiny_split, fresh_store):
        train, _ = tiny_split
        old = fresh_store.refresh(
            fitted_sisg.model, train, n_cells=8, table_coverage=0.9, seed=3
        )
        assert old.version == 0
        assert fresh_store.version == 1
        assert len(fresh_store.current().table) < fresh_store.current().index.n_items
