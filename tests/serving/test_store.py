"""Tests for the double-buffered model store and bundle building."""

import pickle

import numpy as np
import pytest

from repro.core.model import EmbeddingModel
from repro.serving import ModelStore, build_bundle, popularity_ranking
from repro.serving.store import ModelBundle


class TestPopularityRanking:
    def test_ranked_by_click_count(self, tiny_split):
        train, _ = tiny_split
        items, scores = popularity_ranking(train)
        counts = np.zeros(train.n_items, dtype=np.int64)
        for session in train.sessions:
            for item in session.items:
                counts[item] += 1
        assert counts[items[0]] == counts.max()
        assert np.all(np.diff(counts[items]) <= 0)
        assert scores.sum() == pytest.approx(counts[items].sum() / counts.sum())

    def test_max_items_truncates(self, tiny_split):
        train, _ = tiny_split
        items, scores = popularity_ranking(train, max_items=10)
        assert len(items) == 10 and len(scores) == 10

    def test_empty_sessions(self, tiny_split):
        from repro.data.schema import BehaviorDataset

        train, _ = tiny_split
        empty = BehaviorDataset(train.items, train.users, [], validate=False)
        items, scores = popularity_ranking(empty)
        assert len(items) == train.n_items
        assert np.all(scores == 0.0)


class TestBuildBundle:
    def test_full_coverage(self, fitted_sisg, tiny_split):
        train, _ = tiny_split
        bundle = build_bundle(fitted_sisg.model, train, n_cells=8, seed=0)
        assert len(bundle.table) == bundle.index.n_items
        assert bundle.version == 0
        assert len(bundle.popular_items) > 0

    def test_partial_coverage_leaves_ann_tier(self, serving_bundle):
        n_index = serving_bundle.index.n_items
        assert len(serving_bundle.table) < n_index
        uncovered = [
            int(i)
            for i in serving_bundle.index.item_ids
            if int(i) not in serving_bundle.table
        ]
        assert uncovered and all(i in serving_bundle.ann for i in uncovered)

    def test_partial_coverage_cut_follows_table_order(self, fitted_sisg, tiny_split):
        """Regression: the coverage cut comes from the *table's* row order.

        Slicing ``index.item_ids`` instead can pick items the table never
        materialized; the covered set must be a prefix of the full
        table's own rows, with rows identical to the full build.
        """
        train, _ = tiny_split
        full = build_bundle(
            fitted_sisg.model, train, n_cells=8, table_coverage=1.0, seed=0
        )
        partial = build_bundle(
            fitted_sisg.model, train, n_cells=8, table_coverage=0.6, seed=0
        )
        cut = max(1, int(len(full.table) * 0.6))
        np.testing.assert_array_equal(
            partial.table.item_ids, full.table.item_ids[:cut]
        )
        for item in partial.table.item_ids[:3]:
            got_ids, got_scores = partial.table.topk(int(item), 10)
            want_ids, want_scores = full.table.topk(int(item), 10)
            np.testing.assert_array_equal(got_ids, want_ids)
            np.testing.assert_allclose(got_scores, want_scores)

    def test_invalid_coverage(self, fitted_sisg, tiny_split):
        train, _ = tiny_split
        with pytest.raises(ValueError):
            build_bundle(fitted_sisg.model, train, table_coverage=0.0)
        with pytest.raises(ValueError):
            build_bundle(fitted_sisg.model, train, table_coverage=1.5)


class TestModelStore:
    def test_current_returns_bundle(self, fresh_store, serving_bundle):
        current = fresh_store.current()
        assert isinstance(current, ModelBundle)
        assert current.table is serving_bundle.table
        assert fresh_store.version == 0

    def test_swap_increments_version_and_returns_old(
        self, fresh_store, serving_bundle
    ):
        old = fresh_store.swap(serving_bundle)
        assert old.version == 0
        assert fresh_store.version == 1
        fresh_store.swap(serving_bundle)
        assert fresh_store.version == 2

    def test_swap_overrides_stale_version_stamp(self, fresh_store, serving_bundle):
        from dataclasses import replace

        stale = replace(serving_bundle, version=-5)
        fresh_store.swap(stale)
        assert fresh_store.version == 1  # strictly increasing regardless

    def test_snapshot_survives_swap(self, fresh_store, serving_bundle):
        snapshot = fresh_store.current()
        fresh_store.swap(serving_bundle)
        # The old snapshot still answers queries consistently.
        item = int(snapshot.table._items[0])
        items, scores = snapshot.table.topk(item, 5)
        assert len(items) == len(scores)
        assert snapshot.version == 0
        assert fresh_store.current().version == 1

    def test_refresh_builds_and_swaps(self, fitted_sisg, tiny_split, fresh_store):
        train, _ = tiny_split
        old = fresh_store.refresh(
            fitted_sisg.model, train, n_cells=8, table_coverage=0.9, seed=3
        )
        assert old.version == 0
        assert fresh_store.version == 1
        assert len(fresh_store.current().table) < fresh_store.current().index.n_items

    def test_generation_age_survives_wall_clock_steps(
        self, serving_bundle, monkeypatch
    ):
        """Regression: the age gauge must come off the monotonic clock.

        An NTP step between swap and read used to drive
        ``generation_age_s`` negative (or inflate it), which tripped the
        refresh daemon's staleness alarm on healthy stores.
        """
        import repro.serving.store as store_mod

        wall = {"t": 1_000_000.0}
        mono = {"t": 50.0}
        monkeypatch.setattr(store_mod.time, "time", lambda: wall["t"])
        monkeypatch.setattr(store_mod.time, "monotonic", lambda: mono["t"])
        store = ModelStore(serving_bundle)
        mono["t"] += 7.5
        wall["t"] -= 3600.0  # wall clock steps an hour backwards
        assert store.generation_age_s == pytest.approx(7.5)
        assert store.swapped_at == pytest.approx(1_000_000.0)
        store.swap(serving_bundle)
        mono["t"] += 2.0
        assert store.generation_age_s == pytest.approx(2.0)


@pytest.fixture()
def shared_bundle(fitted_sisg, tiny_split):
    """A zero-copy bundle over a *copy* of the shared model.

    ``share_object`` swaps the model's arrays for read-only segment
    views in place, so the session-scoped fitted model must not be the
    one shared.
    """
    train, _ = tiny_split
    source = fitted_sisg.model
    model = EmbeddingModel(
        source.vocab, source.w_in.copy(), source.w_out.copy()
    )
    bundle = build_bundle(
        model,
        train,
        n_cells=8,
        seed=0,
        ann_precision="int8",
        share_memory=True,
    )
    yield bundle
    bundle.release()


class TestSharedBundle:
    def test_segments_recorded_and_deduped(self, shared_bundle):
        assert shared_bundle.segments
        names = shared_bundle.segment_names
        assert len(names) == len(set(names))
        # The ANN index rides on the similarity index's matrix; sharing
        # must keep that aliasing (one segment, one physical copy).
        assert shared_bundle.ann._candidates is shared_bundle.index._candidates

    def test_pickle_ships_handles_not_bytes(self, shared_bundle):
        blob = pickle.dumps(shared_bundle)
        payload = sum(h.nbytes for h in shared_bundle.segments)
        assert len(blob) < payload
        clone = pickle.loads(blob)
        item = int(shared_bundle.index.item_ids[0])
        want_ids, want_scores = shared_bundle.ann.topk(item, 10)
        got_ids, got_scores = clone.ann.topk(item, 10)
        np.testing.assert_array_equal(got_ids, want_ids)
        np.testing.assert_array_equal(got_scores, want_scores)
        assert clone.ann._candidates is clone.index._candidates

    def test_swap_preserves_segments(self, fresh_store, shared_bundle):
        fresh_store.swap(shared_bundle)
        assert fresh_store.current().segment_names == shared_bundle.segment_names

    def test_release_keeps_live_views_readable(self, shared_bundle):
        """Retiring a generation must not dangle in-flight readers."""
        item = int(shared_bundle.index.item_ids[0])
        want_ids, want_scores = shared_bundle.ann.topk(item, 10)
        shared_bundle.release()
        shared_bundle.release()  # idempotent
        assert all(h.released for h in shared_bundle.segments)
        got_ids, got_scores = shared_bundle.ann.topk(item, 10)
        np.testing.assert_array_equal(got_ids, want_ids)
        np.testing.assert_array_equal(got_scores, want_scores)

    def test_release_unlinks_for_late_attachers(self, shared_bundle):
        stale = pickle.loads(pickle.dumps(shared_bundle.segments[0]))
        shared_bundle.release()
        with pytest.raises(FileNotFoundError):
            _ = stale.array

    def test_reshare_roundtrip_matches_plain_bundle(
        self, fitted_sisg, tiny_split, shared_bundle
    ):
        train, _ = tiny_split
        plain = build_bundle(
            fitted_sisg.model, train, n_cells=8, seed=0, ann_precision="int8"
        )
        clone = pickle.loads(pickle.dumps(shared_bundle))
        for item in plain.index.item_ids[:5]:
            want_ids, want_scores = plain.ann.topk(int(item), 10)
            got_ids, got_scores = clone.ann.topk(int(item), 10)
            np.testing.assert_array_equal(got_ids, want_ids)
            np.testing.assert_array_equal(got_scores, want_scores)
