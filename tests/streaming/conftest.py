"""Fixtures for the streaming ingest suite.

Stores are cheap to build over the shared fitted model; appliers mutate
them, so every test gets fresh store + service instances while the
expensive trained model stays session-scoped.
"""

from __future__ import annotations

import pytest

from repro.core.sgns import SGNSConfig
from repro.graph.hbgp import HBGPConfig, hbgp_partition
from repro.serving import (
    MatchingService,
    ModelStore,
    ShardedMatchingService,
    ShardedModelStore,
    build_bundle,
)
from repro.streaming import EventLog, StreamApplier, StreamConfig


@pytest.fixture(scope="module")
def stream_base(fitted_sisg, tiny_split):
    """(model, train dataset) the live generation is built from."""
    train, _test = tiny_split
    return fitted_sisg.model, train


@pytest.fixture()
def live(stream_base):
    """(train, store, service) — a fresh unsharded serving stack."""
    model, train = stream_base
    bundle = build_bundle(model, train, n_cells=12, table_coverage=0.8, seed=0)
    store = ModelStore(bundle)
    return train, store, MatchingService(store)


@pytest.fixture()
def sharded_live(stream_base):
    """(train, store, service) — a fresh 2-shard serving stack."""
    model, train = stream_base
    partition = hbgp_partition(train, HBGPConfig(n_partitions=2))
    store = ShardedModelStore.build(
        model, train, partition, n_cells=8, table_coverage=0.8, seed=0
    )
    return train, store, ShardedMatchingService(store)


@pytest.fixture()
def make_applier():
    """Factory for appliers with a fast one-epoch continuation config."""

    def _make(service, train, log=None, **overrides) -> StreamApplier:
        defaults = dict(
            train_config=SGNSConfig(
                dim=12, epochs=1, window=2, negatives=2, seed=0
            ),
            build_kwargs={"n_cells": 12, "table_coverage": 0.8, "seed": 1},
        )
        defaults.update(overrides)
        # NB: an empty EventLog is falsy (len == 0), so test `is None`.
        log = EventLog() if log is None else log
        return StreamApplier(
            service, log, train, StreamConfig(**defaults), seed=0
        )

    return _make
