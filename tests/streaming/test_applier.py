"""Tests for the stream applier: grow, gate, promote, reconcile."""

import time

import numpy as np
import pytest

from repro.core import item_token
from repro.core.vocab import TokenKind
from repro.serving import build_bundle
from repro.streaming import ClickEvent, EventLog, SyntheticEventStream


def drain(applier):
    reports = applier.run_pending()
    assert reports, "expected at least one window"
    return reports


class TestGrowAndServe:
    def test_new_listing_becomes_servable(self, live, make_applier):
        train, store, service = live
        stream = SyntheticEventStream(train, new_items_per_window=2, seed=0)
        log = EventLog()
        applier = make_applier(service, train, log=log)
        log.extend(stream.window())
        reports = drain(applier)
        assert all(r.applied and not r.quarantined for r in reports)
        assert store.version > 0  # a new generation was promoted
        for item_id in stream.new_item_ids:
            result = service.recommend(item_id, 5)
            assert result.tier != "popularity"
            assert item_id >= train.n_items  # really was outside the catalogue
        assert applier.catalogue_size == train.n_items + len(stream.new_item_ids)

    def test_vocabulary_grew_online(self, live, make_applier):
        train, _store, service = live
        stream = SyntheticEventStream(train, new_items_per_window=1, seed=1)
        log = EventLog()
        applier = make_applier(service, train, log=log)
        before = len(applier.model.vocab)
        log.extend(stream.window())
        drain(applier)
        vocab = applier.model.vocab
        assert len(vocab) > before
        for item_id in stream.new_item_ids:
            token_id = vocab.get_id(item_token(item_id))
            assert token_id is not None
            assert vocab.kind_of(token_id) == TokenKind.ITEM

    def test_window_counters_and_histogram(self, live, make_applier):
        train, _store, service = live
        stream = SyntheticEventStream(train, new_items_per_window=1, seed=2)
        log = EventLog()
        applier = make_applier(service, train, log=log)
        log.extend(stream.window())
        drain(applier)
        metrics = service.metrics
        assert metrics.counter("stream_windows_applied") == 1
        assert metrics.counter("stream_new_items") == len(stream.new_item_ids)
        assert metrics.gauge("stream_lag_events") == 0.0
        assert metrics.gauge("stream_last_drift") is not None


class TestIdempotence:
    def test_replayed_window_is_not_double_applied(self, live, make_applier):
        """At-least-once delivery: a lost commit must not re-apply deltas."""
        train, store, service = live
        stream = SyntheticEventStream(train, new_items_per_window=1, seed=3)
        log = EventLog()
        applier = make_applier(service, train, log=log)
        log.extend(stream.window())
        first = drain(applier)
        assert all(r.applied for r in first)
        version = store.version
        model = applier.model
        vectors = applier.model.w_in.copy()
        size = applier.catalogue_size

        # Simulate the crash-between-apply-and-commit: rewind the cursor
        # so the exact same [start, end) windows come back.
        log.reset(applier._config.cursor, 0)
        replayed = drain(applier)
        assert all(r.duplicate and not r.applied for r in replayed)
        assert [r.window_id for r in replayed] == [r.window_id for r in first]
        assert store.version == version  # no new generation
        assert applier.model is model  # not even retrained
        np.testing.assert_array_equal(applier.model.w_in, vectors)
        assert applier.catalogue_size == size
        assert service.metrics.counter("stream_duplicate_windows") == len(
            replayed
        )


class TestQuarantine:
    def test_drift_gate_quarantines_but_advances(self, live, make_applier):
        train, store, service = live
        stream = SyntheticEventStream(train, new_items_per_window=1, seed=4)
        log = EventLog()
        applier = make_applier(service, train, log=log, drift_threshold=1e-12)
        log.extend(stream.window())
        reports = drain(applier)
        assert all(r.quarantined and not r.applied for r in reports)
        assert all("drift" in r.error for r in reports)
        assert store.version == 0  # nothing promoted
        assert applier.catalogue_size == train.n_items  # catalogue unpoisoned
        assert log.lag(applier._config.cursor) == 0  # but the stream moved on
        assert service.metrics.counter("stream_quarantined_windows") >= 1
        assert "drift" in service.metrics.info("stream_last_error")

    def test_undescribed_new_item_quarantines(self, live, make_applier):
        train, store, service = live
        log = EventLog()
        applier = make_applier(service, train, log=log)
        log.extend([ClickEvent(0, train.n_items + 5)])  # no si_values
        (report,) = drain(applier)
        assert report.quarantined
        assert "side information" in report.error
        assert store.version == 0
        assert log.lag(applier._config.cursor) == 0

    def test_quarantine_never_raises_out_of_apply_next(self, live, make_applier):
        train, _store, service = live
        log = EventLog()
        applier = make_applier(service, train, log=log)
        log.extend([ClickEvent(0, 10**9)])  # wildly non-contiguous id
        (report,) = drain(applier)
        assert report.quarantined
        assert applier.apply_next() is None  # drained, not wedged


class TestReconcile:
    def test_external_promote_triggers_resync(self, live, make_applier):
        train, store, service = live
        stream = SyntheticEventStream(train, new_items_per_window=1, seed=5)
        log = EventLog()
        applier = make_applier(service, train, log=log)
        log.extend(stream.window())
        drain(applier)
        grown = applier.catalogue_size
        assert grown > train.n_items
        assert applier.dataset.n_sessions > train.n_sessions

        # A nightly promote lands underneath the applier; events already
        # in the log are presumed folded into the new full generation.
        nightly = build_bundle(
            applier.model, applier.dataset, n_cells=12, table_coverage=0.8, seed=9
        )
        store.swap(nightly)
        nightly_version = store.version
        assert applier.apply_next() is None  # resync tick, nothing pending
        assert service.metrics.counter("stream_resyncs") == 1
        assert log.cursors()[applier._config.cursor]["resets"] == 1
        # "Nightly wins": accumulated stream sessions are dropped, but the
        # grown catalogue (which the nightly build included) is kept.
        assert applier.dataset.n_sessions == train.n_sessions
        assert applier.catalogue_size == grown
        assert applier.model is nightly.model

        # The stream continues on top of the new generation.
        log.extend(stream.window())
        reports = drain(applier)
        assert any(r.applied for r in reports)
        assert not any(r.resynced for r in reports)  # already reconciled
        assert store.version > nightly_version
        assert service.metrics.counter("stream_resyncs") == 1  # just once

    def test_staleness_gauge_resets_on_apply(self, live, make_applier):
        train, _store, service = live
        log = EventLog()
        applier = make_applier(service, train, log=log)
        time.sleep(0.05)
        before = service.metrics.gauge("stream_staleness_s")
        assert before >= 0.05
        log.extend([ClickEvent(0, 0), ClickEvent(0, 1), ClickEvent(0, 2)])
        drain(applier)
        after = service.metrics.gauge("stream_staleness_s")
        assert after < before


class TestSharded:
    def shard_items(self, store, shard):
        return np.flatnonzero(np.asarray(store.item_partition) == shard)

    def test_only_touched_shards_rebuild(self, sharded_live, make_applier):
        train, store, service = sharded_live
        log = EventLog()
        applier = make_applier(service, train, log=log)
        items = self.shard_items(store, 0)[:6]
        log.extend([ClickEvent(1, int(item)) for item in items])
        (report,) = drain(applier)
        assert report.applied
        assert store.versions == [1, 0]  # shard 1 untouched

    def test_new_items_land_on_lightest_shard(self, sharded_live, make_applier):
        train, store, service = sharded_live
        stream = SyntheticEventStream(train, new_items_per_window=2, seed=6)
        log = EventLog()
        applier = make_applier(service, train, log=log)
        counts_before = np.bincount(
            np.asarray(store.item_partition), minlength=2
        )
        log.extend(stream.window())
        reports = drain(applier)
        assert any(r.applied for r in reports)
        partition = np.asarray(store.item_partition)
        assert len(partition) == train.n_items + len(stream.new_item_ids)
        lightest = int(np.argmin(counts_before))
        assert int(partition[stream.new_item_ids[0]]) == lightest
        for item_id in stream.new_item_ids:
            assert service.recommend(item_id, 5).tier != "popularity"
        service.close()

    def test_hot_items_move_incrementally(self, sharded_live, make_applier):
        train, store, service = sharded_live
        log = EventLog()
        applier = make_applier(
            service, train, log=log, rebalance_ratio=1.2, max_moves=4
        )
        hot = self.shard_items(store, 0)[:2]
        events = []
        for _ in range(40):  # hammer two items of shard 0 only
            events.extend(ClickEvent(2, int(item)) for item in hot)
        log.extend(events)
        (report,) = drain(applier)
        assert report.applied
        assert report.moves, "expected at least one incremental move"
        partition = np.asarray(store.item_partition)
        for item, src, dst in report.moves:
            assert src == 0 and dst == 1
            assert int(partition[item]) == 1
            # The moved item serves from its new shard, not a stale copy.
            assert service.recommend(int(item), 5).tier != "popularity"
        # Both endpoints rebuilt: no shard serves a retired duplicate.
        assert store.versions == [1, 1]
        assert service.metrics.counter("stream_moves") == len(report.moves)

    def test_moves_capped_and_no_oscillation(self, sharded_live, make_applier):
        train, _store, service = sharded_live
        log = EventLog()
        applier = make_applier(
            service, train, log=log, rebalance_ratio=1.01, max_moves=2
        )
        items = self.shard_items(_store, 0)[:8]
        events = []
        for _ in range(10):
            events.extend(ClickEvent(3, int(item)) for item in items)
        log.extend(events)
        (report,) = drain(applier)
        assert len(report.moves) <= 2


class TestBackgroundLoop:
    def test_start_applies_from_event_source(self, live, make_applier):
        train, _store, service = live
        stream = SyntheticEventStream(
            train, new_items_per_window=1, events_per_window=24, seed=7
        )
        applier = make_applier(service, train)
        with applier.start(0.02, event_source=stream):
            assert applier.wait_for_windows(2, timeout=60.0)
        assert applier.windows_applied >= 2
        assert stream.new_item_ids
        assert service.recommend(stream.new_item_ids[0], 5).tier != "popularity"

    def test_wait_for_windows_times_out(self, live, make_applier):
        train, _store, service = live
        applier = make_applier(service, train)
        with applier.start(0.02):  # no events ever arrive
            assert not applier.wait_for_windows(1, timeout=0.1)


class TestConfigValidation:
    def test_bad_rebalance_ratio_rejected(self, live, make_applier):
        train, _store, service = live
        with pytest.raises(ValueError):
            make_applier(service, train, rebalance_ratio=0.5)

    def test_bad_window_events_rejected(self, live, make_applier):
        train, _store, service = live
        with pytest.raises(ValueError):
            make_applier(service, train, window_events=0)
