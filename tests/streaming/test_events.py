"""Tests for the event log, cursors, windowing and sessionization."""

import pytest

from repro.data.schema import Session
from repro.streaming import (
    ClickEvent,
    EventLog,
    MicroBatchWindower,
    sessionize,
)


def clicks(*pairs):
    return [ClickEvent(user, item) for user, item in pairs]


class TestEventLog:
    def test_append_returns_dense_offsets(self):
        log = EventLog()
        assert log.append(ClickEvent(0, 1)) == 0
        assert log.append(ClickEvent(0, 2)) == 1
        assert log.head == 2
        assert len(log) == 2

    def test_extend_returns_new_head(self):
        log = EventLog()
        assert log.extend(clicks((0, 1), (1, 2))) == 2
        assert log.extend(clicks((2, 3))) == 3

    def test_read_is_bounded_and_never_moves_cursors(self):
        log = EventLog()
        log.extend(clicks((0, 1), (0, 2), (0, 3)))
        assert [e.item_id for e in log.read(0, 2)] == [1, 2]
        assert [e.item_id for e in log.read(1)] == [2, 3]
        assert log.position("reader") == 0  # reads don't commit

    def test_read_rejects_bad_args(self):
        log = EventLog()
        with pytest.raises(ValueError):
            log.read(-1)
        with pytest.raises(ValueError):
            log.read(0, 0)

    def test_commit_advances_and_is_monotonic(self):
        log = EventLog()
        log.extend(clicks((0, 1), (0, 2), (0, 3)))
        log.commit("c", 2)
        assert log.position("c") == 2
        assert log.lag("c") == 1
        with pytest.raises(ValueError):
            log.commit("c", 1)  # backwards: replay goes through reset()
        with pytest.raises(ValueError):
            log.commit("c", 4)  # beyond head

    def test_reset_defaults_to_head_and_counts_separately(self):
        log = EventLog()
        log.extend(clicks((0, 1), (0, 2)))
        log.commit("c", 1)
        assert log.reset("c") == 2
        assert log.reset("c", 0) == 0
        snap = log.cursors()["c"]
        assert snap["commits"] == 1
        assert snap["resets"] == 2
        with pytest.raises(ValueError):
            log.reset("c", 3)

    def test_independent_cursors(self):
        log = EventLog()
        log.extend(clicks((0, 1), (0, 2)))
        log.commit("a", 2)
        assert log.position("b") == 0
        assert log.lag("a") == 0
        assert log.lag("b") == 2


class TestMicroBatchWindower:
    def test_caught_up_returns_none(self):
        windower = MicroBatchWindower(EventLog())
        assert windower.next_window() is None

    def test_next_window_peeks_until_commit(self):
        log = EventLog()
        log.extend(clicks((0, 1), (0, 2), (0, 3)))
        windower = MicroBatchWindower(log, max_events=2)
        first = windower.next_window()
        assert (first.start, first.end, first.n_events) == (0, 2, 2)
        # A crash before commit replays the *same* window.
        again = windower.next_window()
        assert (again.start, again.end) == (first.start, first.end)
        assert again.window_id == first.window_id == 0
        windower.commit(first)
        second = windower.next_window()
        assert (second.start, second.end) == (2, 3)
        assert windower.lag() == 1

    def test_window_identity_is_start_offset(self):
        log = EventLog()
        log.extend(clicks((0, 1), (0, 2)))
        windower = MicroBatchWindower(log, max_events=10)
        window = windower.next_window()
        assert window.window_id == window.start == 0


class TestSessionize:
    def test_groups_per_user_in_event_order(self):
        sessions = sessionize(clicks((7, 1), (7, 2), (9, 5), (7, 3)))
        assert sessions == [Session(7, [1, 2, 3]), Session(9, [5])]

    def test_splits_at_max_len(self):
        sessions = sessionize(clicks(*[(1, i) for i in range(5)]), max_len=2)
        assert [s.items for s in sessions] == [[0, 1], [2, 3], [4]]
        assert all(s.user_id == 1 for s in sessions)

    def test_single_click_sessions_kept(self):
        sessions = sessionize(clicks((3, 10)))
        assert sessions == [Session(3, [10])]

    def test_empty(self):
        assert sessionize([]) == []
