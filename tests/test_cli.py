"""End-to-end tests for the ``sisg`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_train_variant_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "a", "b", "--variant", "XX"])


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "ds.npz"
    code = main(
        [
            "generate",
            str(path),
            "--items", "200",
            "--users", "60",
            "--leaves", "8",
            "--tops", "3",
            "--sessions", "400",
            "--seed", "5",
        ]
    )
    assert code == 0
    return path


class TestWorkflow:
    def test_generate_creates_file(self, dataset_path):
        assert dataset_path.exists()

    def test_stats(self, dataset_path, capsys):
        assert main(["stats", str(dataset_path)]) == 0
        out = capsys.readouterr().out
        assert "#Items" in out
        assert "#Training pairs" in out

    def test_partition(self, dataset_path, capsys):
        assert main(["partition", str(dataset_path), "--workers", "3"]) == 0
        out = capsys.readouterr().out
        assert "hbgp" in out and "random" in out

    def test_train_evaluate_recommend(self, dataset_path, tmp_path, capsys):
        model_path = tmp_path / "model"
        code = main(
            [
                "train",
                str(dataset_path),
                str(model_path),
                "--variant", "SISG-F",
                "--dim", "8",
                "--epochs", "1",
                "--window", "2",
                "--negatives", "3",
            ]
        )
        assert code == 0
        assert model_path.with_suffix(".npz").exists()

        code = main(
            ["evaluate", str(dataset_path), str(model_path), "--ks", "1", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HR@1" in out and "HR@10" in out

        code = main(["recommend", str(model_path), "0", "-k", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("item_") == 5

    def test_train_distributed_engine(self, dataset_path, tmp_path):
        model_path = tmp_path / "dist_model"
        code = main(
            [
                "train",
                str(dataset_path),
                str(model_path),
                "--variant", "SGNS",
                "--dim", "8",
                "--epochs", "1",
                "--engine", "distributed",
                "--workers", "2",
            ]
        )
        assert code == 0
        assert model_path.with_suffix(".npz").exists()
