"""End-to-end tests for the ``sisg`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_train_variant_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "a", "b", "--variant", "XX"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "ds.npz", "model"])
        assert args.port == 8460
        assert args.max_batch == 32
        assert args.high_water == 512
        assert args.duration == 0.0
        assert args.refresh_every is None

    def test_netload_defaults(self):
        args = build_parser().parse_args(["netload", "ds.npz"])
        assert args.port == 8460
        assert args.processes == 2
        assert args.mix == "0.7,0.1,0.1,0.1"
        assert args.output is None

    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream", "ds.npz", "model"])
        assert args.windows == 2
        assert args.new_items_per_window == 2
        assert args.port == 0  # ephemeral: the smoke picks a free port
        assert args.drift_threshold is None

    def test_serve_accepts_stream_every(self):
        args = build_parser().parse_args(
            ["serve", "ds.npz", "model", "--stream-every", "5"]
        )
        assert args.stream_every == 5.0


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "ds.npz"
    code = main(
        [
            "generate",
            str(path),
            "--items", "200",
            "--users", "60",
            "--leaves", "8",
            "--tops", "3",
            "--sessions", "400",
            "--seed", "5",
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def serving_model_path(dataset_path, tmp_path_factory):
    """A trained SISG-F-U model for the serving commands (has user types)."""
    path = tmp_path_factory.mktemp("cli-serve") / "model"
    code = main(
        [
            "train",
            str(dataset_path),
            str(path),
            "--variant", "SISG-F-U",
            "--dim", "8",
            "--epochs", "1",
            "--window", "2",
            "--negatives", "3",
        ]
    )
    assert code == 0
    return path


class TestWorkflow:
    def test_generate_creates_file(self, dataset_path):
        assert dataset_path.exists()

    def test_stats(self, dataset_path, capsys):
        assert main(["stats", str(dataset_path)]) == 0
        out = capsys.readouterr().out
        assert "#Items" in out
        assert "#Training pairs" in out

    def test_partition(self, dataset_path, capsys):
        assert main(["partition", str(dataset_path), "--workers", "3"]) == 0
        out = capsys.readouterr().out
        assert "hbgp" in out and "random" in out

    def test_train_evaluate_recommend(self, dataset_path, tmp_path, capsys):
        model_path = tmp_path / "model"
        code = main(
            [
                "train",
                str(dataset_path),
                str(model_path),
                "--variant", "SISG-F",
                "--dim", "8",
                "--epochs", "1",
                "--window", "2",
                "--negatives", "3",
            ]
        )
        assert code == 0
        assert model_path.with_suffix(".npz").exists()

        code = main(
            ["evaluate", str(dataset_path), str(model_path), "--ks", "1", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HR@1" in out and "HR@10" in out

        code = main(["recommend", str(model_path), "0", "-k", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("item_") == 5

    def test_serve_demo(self, dataset_path, serving_model_path, capsys):
        code = main(
            ["serve-demo", str(dataset_path), str(serving_model_path), "-k", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for needle in ("table", "ann", "cold_item", "popularity", "hot swap"):
            assert needle in out
        assert '"store_version": 1' in out  # the demo performed a swap

    def test_loadgen_json_report(
        self, dataset_path, serving_model_path, tmp_path, capsys
    ):
        out_path = tmp_path / "report.json"
        code = main(
            [
                "loadgen",
                str(dataset_path),
                str(serving_model_path),
                "--requests", "300",
                "--batch-size", "8",
                "--swap-mid",
                "--output", str(out_path),
            ]
        )
        assert code == 0
        report = json.loads(out_path.read_text())
        assert report["failures"] == 0
        assert report["swap_performed"]
        assert len(report["versions_served"]) == 2
        assert report["qps"] > 0
        assert "table" in report["tiers"]
        for stats in report["tiers"].values():
            assert stats["p50"] <= stats["p95"] <= stats["p99"]
        # stdout carries the same report
        assert json.loads(capsys.readouterr().out) == report

    def test_loadgen_bad_mix_rejected(self, dataset_path, serving_model_path):
        code = main(
            [
                "loadgen",
                str(dataset_path),
                str(serving_model_path),
                "--mix", "0.5,0.5",
            ]
        )
        assert code == 2

    def test_refresh_daemon_recovers_from_injected_failure(
        self, dataset_path, serving_model_path, tmp_path, capsys
    ):
        out_path = tmp_path / "status.json"
        code = main(
            [
                "refresh-daemon",
                str(dataset_path),
                str(serving_model_path),
                "--cycles", "1",
                "--inject-failures", "1",
                "--output", str(out_path),
            ]
        )
        assert code == 0
        status = json.loads(out_path.read_text())
        assert status["store_version"] == 1
        assert status["history"][0]["promoted"]
        assert status["history"][0]["attempts"] == 2  # retry recovered
        assert status["metrics"]["counters"]["refresh_retries"] == 1
        # stdout carries the same status
        assert json.loads(capsys.readouterr().out) == status

    def test_refresh_daemon_drift_gate_exits_nonzero(
        self, dataset_path, serving_model_path, capsys
    ):
        code = main(
            [
                "refresh-daemon",
                str(dataset_path),
                str(serving_model_path),
                "--cycles", "1",
                "--drift-threshold", "1e-12",
            ]
        )
        assert code == 1  # nothing promoted: the old generation serves
        status = json.loads(capsys.readouterr().out)
        assert status["store_version"] == 0
        assert status["history"][0]["aborted_by"] == "drift_gate"

    def test_refresh_daemon_sharded(
        self, dataset_path, serving_model_path, capsys
    ):
        code = main(
            [
                "refresh-daemon",
                str(dataset_path),
                str(serving_model_path),
                "--cycles", "1",
                "--shards", "2",
            ]
        )
        assert code == 0
        status = json.loads(capsys.readouterr().out)
        assert status["store_version"] == [1, 1]

    def test_serve_demo_refresh_every(
        self, dataset_path, serving_model_path, capsys
    ):
        code = main(
            [
                "serve-demo",
                str(dataset_path),
                str(serving_model_path),
                "-k", "5",
                "--refresh-every", "0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "refresh daemon" in out
        assert "promoted=True" in out
        assert "warm item after refresh" in out

    def test_netload_bad_mix_rejected(self, dataset_path):
        code = main(["netload", str(dataset_path), "--mix", "1,2,3"])
        assert code == 2

    def test_stream_smoke(
        self, dataset_path, serving_model_path, tmp_path, capsys
    ):
        """`sisg stream`: windows apply against a live gateway while
        requests fire; new listings must end up servable over the wire."""
        out_path = tmp_path / "stream.json"
        code = main(
            [
                "stream",
                str(dataset_path),
                str(serving_model_path),
                "--windows", "1",
                "--new-items-per-window", "1",
                "--events-per-window", "32",
                "--requests-per-window", "8",
                "--output", str(out_path),
            ]
        )
        assert code == 0
        report = json.loads(out_path.read_text())
        # The generator may overshoot --events-per-window by one warm
        # run, spilling a second micro-batch: "applied them all" is the
        # contract, an exact count is not.
        assert report["windows_applied"] >= 1
        assert report["request_errors"] == 0
        assert report["new_items_servable"]
        assert report["new_item_tiers"]
        assert json.loads(capsys.readouterr().out) == report

    def test_serve_then_netload_over_socket(
        self, dataset_path, serving_model_path, tmp_path, capsys
    ):
        """The full network path: `sisg serve` on a socket, `sisg netload`
        driving it (netload polls /healthz, so starting both concurrently
        is safe — exactly how the CI smoke job wires them)."""
        import socket
        import threading

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        serve_code: list = []
        server = threading.Thread(
            target=lambda: serve_code.append(
                main(
                    [
                        "serve",
                        str(dataset_path),
                        str(serving_model_path),
                        "--port", str(port),
                        "--duration", "5",
                        "--max-wait-ms", "5",
                    ]
                )
            ),
        )
        server.start()
        try:
            out_path = tmp_path / "netload.json"
            code = main(
                [
                    "netload",
                    str(dataset_path),
                    "--port", str(port),
                    "--requests", "60",
                    "--rate", "400",
                    "--processes", "1",
                    "--connections", "4",
                    "--output", str(out_path),
                ]
            )
        finally:
            server.join(timeout=60.0)
        assert code == 0  # netload exits 1 when any request errored
        assert serve_code == [0]
        report = json.loads(out_path.read_text())
        assert report["ok"] == 60
        assert report["errors"] == 0
        counters = report["gateway"]["counters"]
        assert counters["gateway_coalesced_batches"] >= 1
        out = capsys.readouterr().out
        assert "gateway listening on" in out

    def test_train_distributed_engine(self, dataset_path, tmp_path):
        model_path = tmp_path / "dist_model"
        code = main(
            [
                "train",
                str(dataset_path),
                str(model_path),
                "--variant", "SGNS",
                "--dim", "8",
                "--epochs", "1",
                "--engine", "distributed",
                "--workers", "2",
            ]
        )
        assert code == 0
        assert model_path.with_suffix(".npz").exists()
