"""Cross-module integration tests: full train->evaluate->serve flows."""

import numpy as np

from repro.baselines.itemcf import ItemCF
from repro.core.sisg import SISG
from repro.data.synthetic import SyntheticWorld, SyntheticWorldConfig
from repro.eval.ctr import CTRConfig, CTRSimulator
from repro.eval.hitrate import evaluate_hitrate


class RandomRecommender:
    """Noise floor for retrieval quality checks."""

    def __init__(self, n_items, seed=0):
        self.n_items = n_items
        self.rng = np.random.default_rng(seed)

    def __contains__(self, item_id):
        return True

    def topk(self, item_id, k):
        items = self.rng.choice(self.n_items, size=k, replace=False)
        return items, np.zeros(k)

    def topk_batch(self, item_ids, k):
        return self.rng.integers(
            0, self.n_items, size=(len(item_ids), k)
        ).astype(np.int64)


class TestOfflineFlow:
    def test_trained_models_beat_random(self, tiny_split, tiny_dataset):
        """Every real method must clear the random noise floor by a lot."""
        train, test = tiny_split
        random_hr = evaluate_hitrate(
            RandomRecommender(tiny_dataset.n_items), test, ks=(20,)
        ).hit_rates[20]

        sisg = SISG.sisg_f(dim=16, epochs=2, window=2, negatives=5, seed=0).fit(
            train
        )
        sisg_hr = evaluate_hitrate(sisg.index, test, ks=(20,)).hit_rates[20]

        cf = ItemCF().fit(train)
        cf_hr = evaluate_hitrate(cf, test, ks=(20,)).hit_rates[20]

        assert sisg_hr > 5 * max(random_hr, 1e-4)
        assert cf_hr > 5 * max(random_hr, 1e-4)

    def test_si_enrichment_helps_on_sparse_world(self):
        """The paper's core claim at test scale: SI lifts HR over SGNS."""
        config = SyntheticWorldConfig(
            n_items=800,
            n_users=200,
            n_top_categories=4,
            n_leaf_categories=10,
            item_zipf=1.2,
        )
        world = SyntheticWorld(config, seed=13)
        dataset = world.generate_dataset(n_sessions=1200)  # sparse
        train, test = dataset.split_last_item()
        params = dict(dim=16, epochs=3, window=2, negatives=5, seed=2)
        sgns_hr = evaluate_hitrate(
            SISG.sgns(**params).fit(train).index, test, ks=(20,)
        ).hit_rates[20]
        sisg_hr = evaluate_hitrate(
            SISG.sisg_f(**params).fit(train).index, test, ks=(20,)
        ).hit_rates[20]
        assert sisg_hr > sgns_hr


class TestServingFlow:
    def test_sisg_index_plugs_into_ctr_simulator(self, tiny_world, tiny_split):
        train, _ = tiny_split
        model = SISG.sisg_f_u(
            dim=12, epochs=1, window=2, negatives=4, seed=3
        ).fit(train)
        simulator = CTRSimulator(
            tiny_world,
            train.users,
            CTRConfig(n_days=2, impressions_per_day=150, seed=4),
        )
        result = simulator.run(
            {
                "sisg": model.index,
                "random": RandomRecommender(train.n_items),
            }
        )
        assert result.mean_ctr("sisg") > result.mean_ctr("random")


class TestColdStartFlow:
    def test_cold_item_slate_is_leaf_consistent(self, fitted_sisg, tiny_dataset):
        hits = []
        for probe in range(0, 60, 7):
            si = dict(tiny_dataset.items[probe].si_values)
            items, _ = fitted_sisg.recommend_cold_item(si, k=10)
            leaf = tiny_dataset.leaf_of(probe)
            hits.append(
                np.mean([tiny_dataset.leaf_of(int(i)) == leaf for i in items])
            )
        assert np.mean(hits) > 0.3  # random would be ~1/8


class TestDistributedFlow:
    def test_distributed_sisg_end_to_end(self, tiny_split):
        train, test = tiny_split
        model = SISG.sisg_f_u(
            dim=12, epochs=1, window=2, negatives=4, seed=3,
            engine="distributed", n_workers=3,
        ).fit(train)
        hr = evaluate_hitrate(model.index, test, ks=(20,)).hit_rates[20]
        random_hr = evaluate_hitrate(
            RandomRecommender(train.n_items), test, ks=(20,)
        ).hit_rates[20]
        assert hr > 5 * max(random_hr, 1e-4)
