"""Property-based tests on cross-cutting invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.sampling import (
    AliasSampler,
    PairGenerator,
    build_noise_distribution,
)
from repro.core.sgns import scatter_update, sigmoid
from repro.data.stats import _pair_count


class TestSigmoidProperties:
    @given(
        st.lists(
            st.floats(min_value=-700, max_value=700, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_bounded_and_monotone(self, values):
        x = np.asarray(sorted(values))
        y = sigmoid(x)
        assert np.all((y >= 0.0) & (y <= 1.0))
        assert np.all(np.diff(y) >= -1e-12)


class TestNoiseProperties:
    @given(
        st.lists(st.integers(0, 10_000), min_size=1, max_size=100),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_distribution_sums_to_one(self, counts, alpha):
        counts = np.asarray(counts, dtype=float)
        if counts.sum() == 0:
            return
        dist = build_noise_distribution(counts, alpha)
        assert np.isclose(dist.sum(), 1.0)
        assert np.all(dist >= 0)
        # Zero-count tokens carry zero noise mass.
        assert np.all(dist[counts == 0] == 0.0)

    @given(st.lists(st.integers(1, 10_000), min_size=2, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_alpha_flattens_ordering(self, counts):
        """alpha<1 keeps order but compresses ratios."""
        counts = np.asarray(counts, dtype=float)
        flat = build_noise_distribution(counts, alpha=0.5)
        sharp = build_noise_distribution(counts, alpha=1.0)
        i, j = int(np.argmax(counts)), int(np.argmin(counts))
        if counts[i] == counts[j]:
            return
        assert flat[i] >= flat[j]
        assert flat[i] / flat[j] <= sharp[i] / sharp[j] + 1e-9


class TestPairCountProperties:
    @given(st.integers(0, 60), st.integers(1, 20))
    def test_symmetric_double_directional(self, length, window):
        assert _pair_count(length, window, False) == 2 * _pair_count(
            length, window, True
        )

    @given(st.integers(2, 60), st.integers(1, 20))
    def test_monotone_in_window(self, length, window):
        assert _pair_count(length, window + 1, True) >= _pair_count(
            length, window, True
        )


class TestPairGeneratorProperties:
    @given(
        st.lists(
            st.lists(st.integers(0, 20), min_size=0, max_size=15),
            min_size=1,
            max_size=8,
        ),
        st.integers(1, 5),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_batches_cover_exact_pair_count(self, raw, window, directional):
        sequences = [np.asarray(s, dtype=np.int64) for s in raw]
        gen = PairGenerator(
            sequences, window=window, directional=directional,
            dynamic_window=False,
        )
        total = sum(len(c) for c, _x in gen.batches(batch_size=7))
        assert total == gen.count_pairs()

    @given(
        st.lists(st.integers(0, 10), min_size=2, max_size=20),
        st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_pairs_are_within_window_distance(self, raw, window):
        seq = np.asarray(raw, dtype=np.int64)
        gen = PairGenerator([seq], window=window, directional=True,
                            dynamic_window=False)
        centers, contexts = gen.pairs_of_sequence(seq)
        # Every (center, context) pair must exist at some offset <= window.
        position = {}
        for idx, token in enumerate(raw):
            position.setdefault(token, []).append(idx)
        for c, x in zip(centers.tolist(), contexts.tolist()):
            assert any(
                0 < jx - ic <= window
                for ic in position[c]
                for jx in position[x]
            )


class TestScatterUpdateProperties:
    @given(
        st.lists(st.integers(0, 9), min_size=1, max_size=40),
        st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_clip_bounds_every_row_step(self, indices, max_norm):
        rng = np.random.default_rng(0)
        matrix = np.zeros((10, 4))
        grads = rng.normal(scale=10.0, size=(len(indices), 4))
        scatter_update(
            matrix,
            np.asarray(indices),
            grads,
            lr=1.0,
            max_step_norm=max_norm,
        )
        norms = np.linalg.norm(matrix, axis=1)
        assert np.all(norms <= max_norm + 1e-9)

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_sum_equals_mean_times_count(self, indices):
        indices = np.asarray(indices)
        grads = np.ones((len(indices), 2))
        m_sum = np.zeros((5, 2))
        m_mean = np.zeros((5, 2))
        scatter_update(m_sum, indices, grads, 1.0, "sum", max_step_norm=None)
        scatter_update(m_mean, indices, grads, 1.0, "mean", max_step_norm=None)
        counts = np.bincount(indices, minlength=5).astype(float)
        touched = counts > 0
        np.testing.assert_allclose(
            m_sum[touched], m_mean[touched] * counts[touched, None]
        )


class TestAliasSamplerProperties:
    @given(st.integers(1, 30), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_uniform_weights_cover_support(self, n, seed):
        sampler = AliasSampler(np.ones(n))
        draws = sampler.sample(max(200, n * 30), rng=seed)
        assert set(np.unique(draws)) <= set(range(n))
        if n <= 10:
            assert len(np.unique(draws)) == n
