"""Tests for the candidate-table serving artifact."""

import numpy as np
import pytest

from repro.serving.candidates import (
    CandidateTable,
    CandidateTableConfig,
    build_candidate_table,
)


@pytest.fixture(scope="module")
def table(fitted_sgns, tiny_split):
    train, _ = tiny_split
    return build_candidate_table(
        fitted_sgns.index, train, CandidateTableConfig(k=15)
    )


class TestConfig:
    def test_defaults_valid(self):
        CandidateTableConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [("k", 0), ("fetch_factor", 0), ("max_per_shop", 0), ("max_per_brand", -1)],
    )
    def test_invalid_rejected(self, field, value):
        cfg = CandidateTableConfig()
        setattr(cfg, field, value)
        with pytest.raises(ValueError):
            cfg.validate()


class TestBuild:
    def test_covers_all_index_items(self, table, fitted_sgns):
        assert len(table) == fitted_sgns.index.n_items

    def test_lookup_matches_index_without_filters(self, fitted_sgns, tiny_split):
        train, _ = tiny_split
        unfiltered = build_candidate_table(
            fitted_sgns.index,
            train,
            CandidateTableConfig(k=10, max_per_shop=None, max_per_brand=None),
        )
        query = int(fitted_sgns.index.item_ids[0])
        expected, _ = fitted_sgns.index.topk(query, 10)
        got, _ = unfiltered.topk(query, 10)
        np.testing.assert_array_equal(got, expected)

    def test_no_self_recommendation(self, table):
        for item in list(table._row)[:20]:
            candidates, _ = table.lookup(item)
            assert item not in candidates[candidates >= 0]

    def test_shop_diversity_enforced(self, fitted_sgns, tiny_split):
        train, _ = tiny_split
        diverse = build_candidate_table(
            fitted_sgns.index,
            train,
            CandidateTableConfig(k=15, max_per_shop=2, max_per_brand=None),
        )
        shop = {i.item_id: i.si_values["shop"] for i in train.items}
        for item in list(diverse._row)[:20]:
            candidates, _ = diverse.lookup(item)
            valid = candidates[candidates >= 0]
            counts = {}
            for c in valid:
                counts[shop[int(c)]] = counts.get(shop[int(c)], 0) + 1
            assert all(v <= 2 for v in counts.values())

    def test_min_score_floor(self, fitted_sgns, tiny_split):
        train, _ = tiny_split
        strict = build_candidate_table(
            fitted_sgns.index,
            train,
            CandidateTableConfig(k=15, min_score=0.99, max_per_shop=None,
                                 max_per_brand=None),
        )
        query = int(fitted_sgns.index.item_ids[0])
        candidates, scores = strict.lookup(query)
        kept = candidates >= 0
        assert np.all(scores[kept] >= 0.99)


class TestServe:
    def test_lookup_unknown_raises(self, table):
        with pytest.raises(KeyError):
            table.lookup(10**9)

    def test_topk_truncation(self, table):
        query = int(list(table._row)[0])
        items, scores = table.topk(query, 5)
        assert len(items) <= 5
        assert len(items) == len(scores)

    def test_topk_batch_interface(self, table):
        queries = np.asarray(list(table._row)[:4], dtype=np.int64)
        out = table.topk_batch(queries, k=7)
        assert out.shape == (4, 7)

    def test_evaluator_compatible(self, table, tiny_split):
        from repro.eval.hitrate import evaluate_hitrate

        _, test = tiny_split
        result = evaluate_hitrate(table, test, ks=(10,), name="table")
        assert 0.0 <= result.hit_rates[10] <= 1.0

    def test_save_load_roundtrip(self, table, tmp_path):
        path = tmp_path / "candidates.npz"
        table.save(path)
        loaded = CandidateTable.load(path)
        query = int(list(table._row)[0])
        a, sa = table.lookup(query)
        b, sb = loaded.lookup(query)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_allclose(sa, sb)  # NaN pads compare equal

    def test_pad_scores_are_nan_not_zero(self, fitted_sgns, tiny_split):
        train, _ = tiny_split
        # A high floor guarantees short rows, hence pads.
        strict = build_candidate_table(
            fitted_sgns.index,
            train,
            CandidateTableConfig(k=15, min_score=0.99, max_per_shop=None,
                                 max_per_brand=None),
        )
        padded = False
        for item in list(strict._row)[:50]:
            candidates, scores = strict.lookup(item)
            pads = candidates < 0
            if pads.any():
                padded = True
                assert np.all(np.isnan(scores[pads]))
            assert not np.isnan(scores[~pads]).any()
        assert padded, "expected at least one padded row under min_score=0.99"

    def test_padded_roundtrip_preserves_nan(self, fitted_sgns, tiny_split, tmp_path):
        train, _ = tiny_split
        strict = build_candidate_table(
            fitted_sgns.index,
            train,
            CandidateTableConfig(k=15, min_score=0.99, max_per_shop=None,
                                 max_per_brand=None),
        )
        path = tmp_path / "strict.npz"
        strict.save(path)
        loaded = CandidateTable.load(path)
        for item in list(strict._row)[:20]:
            a, sa = strict.lookup(item)
            b, sb = loaded.lookup(item)
            np.testing.assert_array_equal(a, b)
            np.testing.assert_allclose(sa, sb)

    def test_topk_batch_matches_per_item_lookup(self, table):
        known = np.asarray(list(table._row)[:10], dtype=np.int64)
        queries = np.concatenate([known, [10**9, -7]])  # unknown ids pad
        out = table.topk_batch(queries, k=8)
        for row, item in enumerate(queries):
            if int(item) in table:
                expected = table.lookup(int(item))[0][:8]
                np.testing.assert_array_equal(out[row], expected)
            else:
                assert np.all(out[row] == -1)

    def test_topk_batch_empty_queries(self, table):
        out = table.topk_batch(np.empty(0, dtype=np.int64), k=5)
        assert out.shape == (0, 5)

    def test_subset(self, table):
        keep = np.asarray(list(table._row)[:6], dtype=np.int64)
        small = table.subset(keep)
        assert len(small) == 6
        for item in keep:
            a, sa = table.lookup(int(item))
            b, sb = small.lookup(int(item))
            np.testing.assert_array_equal(a, b)
            np.testing.assert_allclose(sa, sb)
        with pytest.raises(KeyError):
            small.lookup(int(list(table._row)[10]))

    def test_subset_unknown_item_rejected(self, table):
        with pytest.raises(ValueError):
            table.subset(np.asarray([10**9]))
