"""Unit tests for the shared utilities."""

import logging
import time

import numpy as np
import pytest

from repro.utils import (
    Timer,
    ensure_rng,
    get_logger,
    require,
    require_in_range,
    require_positive,
    require_type,
    spawn_rngs,
)
from repro.utils.logger import configure_basic_logging


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent_and_deterministic(self):
        a = [g.random() for g in spawn_rngs(7, 3)]
        b = [g.random() for g in spawn_rngs(7, 3)]
        assert a == b
        assert len(set(a)) == 3

    def test_zero_ok(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestTimer:
    def test_context_manager(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.01

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_live_elapsed(self):
        t = Timer()
        t.start()
        assert t.elapsed >= 0.0
        t.stop()


class TestLogger:
    def test_namespacing(self):
        assert get_logger("core.sgns").name == "repro.core.sgns"
        assert get_logger("repro.core.sgns").name == "repro.core.sgns"
        assert get_logger("repro").name == "repro"

    def test_configure_basic_logging_idempotent(self):
        configure_basic_logging(logging.INFO)
        configure_basic_logging(logging.DEBUG)
        logger = logging.getLogger("repro")
        real = [
            h for h in logger.handlers
            if not isinstance(h, logging.NullHandler)
        ]
        assert len(real) == 1
        # Restore quiet default for the rest of the suite.
        for handler in real:
            logger.removeHandler(handler)


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        require_positive(1, "x")
        require_positive(0, "x", strict=False)
        with pytest.raises(ValueError):
            require_positive(0, "x")
        with pytest.raises(ValueError):
            require_positive(-1, "x", strict=False)

    def test_require_in_range(self):
        require_in_range(0.5, "x", 0, 1)
        require_in_range(0.0, "x", 0, 1)
        with pytest.raises(ValueError):
            require_in_range(0.0, "x", 0, 1, inclusive=False)
        with pytest.raises(ValueError):
            require_in_range(2.0, "x", 0, 1)

    def test_require_type(self):
        require_type(3, "x", int)
        require_type("s", "x", int, str)
        with pytest.raises(TypeError, match="x must be int"):
            require_type("s", "x", int)


class TestTimerLaps:
    def test_lap_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().lap()

    def test_laps_without_stopping(self):
        t = Timer()
        t.start()
        first = t.lap()
        second = t.lap()
        assert first >= 0.0 and second >= 0.0
        assert t.elapsed >= first + second  # still running

    def test_laps_sum_close_to_elapsed(self):
        t = Timer()
        t.start()
        laps = [t.lap() for _ in range(5)]
        total = t.stop()
        assert sum(laps) <= total

    def test_reuse_without_reallocation(self):
        t = Timer()
        for _ in range(3):
            t.start()
            t.lap()
            assert t.stop() >= 0.0

    def test_start_resets_lap_marker(self):
        t = Timer()
        t.start()
        time.sleep(0.005)
        t.start()  # restart: the pending lap interval is discarded
        assert t.lap() < 0.005
