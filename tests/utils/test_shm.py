"""Tests for zero-copy shared-memory / mmap array handles."""

import multiprocessing
import os
import pickle
import subprocess
import sys
import textwrap

import numpy as np
import pytest

import repro
from repro.utils.shm import (
    MappedArray,
    SharedArray,
    ZeroCopyPickle,
    share_array,
    share_object,
)


@pytest.fixture
def payload():
    rng = np.random.default_rng(11)
    return rng.normal(size=(64, 8)).astype(np.float32)


class TestSharedArray:
    def test_round_trip_via_pickle(self, payload):
        handle = SharedArray.create(payload)
        try:
            clone = pickle.loads(pickle.dumps(handle))
            np.testing.assert_array_equal(clone.array, payload)
            assert clone.name == handle.name
            assert clone.nbytes == payload.nbytes
        finally:
            handle.release()

    def test_views_are_read_only(self, payload):
        handle = SharedArray.create(payload)
        try:
            with pytest.raises(ValueError):
                handle.array[0, 0] = 1.0
            attached = pickle.loads(pickle.dumps(handle))
            with pytest.raises(ValueError):
                attached.array[0, 0] = 1.0
        finally:
            handle.release()

    def test_view_survives_release(self, payload):
        """Regression: release() must not unmap under a live view.

        ``SharedMemory.close()`` unmaps even while numpy views exist
        (they do not pin the exported buffer), so an eager close here
        used to turn the next read into a segfault.  release() is now
        unlink-only; the unmap is tied to the view's destruction.
        """
        handle = SharedArray.create(payload)
        view = handle.array
        handle.release()
        assert handle.released
        np.testing.assert_array_equal(view, payload)
        assert float(view.sum()) == pytest.approx(float(payload.sum()))

    def test_attached_view_survives_creator_release(self, payload):
        handle = SharedArray.create(payload)
        attached = pickle.loads(pickle.dumps(handle))
        view = attached.array
        handle.release()
        np.testing.assert_array_equal(view, payload)

    def test_release_unlinks_name(self, payload):
        handle = SharedArray.create(payload)
        stale = pickle.loads(pickle.dumps(handle))
        handle.release()
        with pytest.raises(FileNotFoundError):
            _ = stale.array

    def test_release_is_idempotent(self, payload):
        handle = SharedArray.create(payload)
        handle.release()
        handle.release()
        assert handle.released

    def test_non_creator_release_does_not_unlink(self, payload):
        handle = SharedArray.create(payload)
        try:
            attached = pickle.loads(pickle.dumps(handle))
            attached.release()
            # The creator's segment must still be attachable.
            fresh = pickle.loads(pickle.dumps(handle))
            np.testing.assert_array_equal(fresh.array, payload)
        finally:
            handle.release()

    def test_fork_child_attaches_same_pages(self, payload):
        handle = SharedArray.create(payload)
        try:
            ctx = multiprocessing.get_context("fork")
            queue = ctx.Queue()
            proc = ctx.Process(
                target=_child_checksum, args=(pickle.dumps(handle), queue)
            )
            proc.start()
            got = queue.get(timeout=30)
            proc.join(timeout=30)
            assert proc.exitcode == 0
            assert got == pytest.approx(float(payload.sum()))
        finally:
            handle.release()

    def test_fresh_process_attaches_by_name(self, payload, tmp_path):
        """A process with no fork lineage attaches purely by name."""
        handle = SharedArray.create(payload)
        try:
            blob = tmp_path / "handle.pkl"
            blob.write_bytes(pickle.dumps(handle))
            script = textwrap.dedent(
                """
                import pickle, sys
                import numpy as np
                handle = pickle.loads(open(sys.argv[1], "rb").read())
                print(float(handle.array.sum()))
                """
            )
            env = dict(os.environ)
            src = os.path.dirname(os.path.dirname(repro.__file__))
            env["PYTHONPATH"] = src
            out = subprocess.run(
                [sys.executable, "-c", script, str(blob)],
                env=env,
                capture_output=True,
                text=True,
                timeout=60,
            )
            assert out.returncode == 0, out.stderr
            assert float(out.stdout.strip()) == pytest.approx(
                float(payload.sum())
            )
        finally:
            handle.release()


class TestMappedArray:
    def test_round_trip(self, payload, tmp_path):
        handle = MappedArray.create(payload, directory=str(tmp_path))
        clone = pickle.loads(pickle.dumps(handle))
        np.testing.assert_array_equal(clone.array, payload)
        assert not np.asarray(clone.array).flags.writeable

    def test_release_deletes_file(self, payload, tmp_path):
        handle = MappedArray.create(payload, directory=str(tmp_path))
        path = handle.path
        assert os.path.exists(path)
        handle.release()
        handle.release()
        assert handle.released
        assert not os.path.exists(path)


class _Carrier(ZeroCopyPickle):
    def __init__(self, left, right, tag):
        self.left = left
        self.right = right
        self.tag = tag


class TestShareObject:
    def test_backend_validation(self, payload):
        with pytest.raises(ValueError):
            share_array(payload, backend="tmpfs")

    def test_aliased_attributes_share_one_segment(self, payload):
        obj = _Carrier(payload, payload, tag="x")
        created = share_object(obj, ("left", "right", "tag"))
        try:
            assert len(created) == 1
            assert obj._shared["left"] is obj._shared["right"]
            assert obj.left is obj.right
            assert obj.tag == "x"  # non-arrays are left alone
            clone = pickle.loads(pickle.dumps(obj))
            assert clone.left is clone.right
            np.testing.assert_array_equal(clone.left, payload)
        finally:
            for handle in created:
                handle.release()

    def test_resharing_reuses_existing_segments(self, payload):
        obj = _Carrier(payload, payload.copy(), tag="x")
        first = share_object(obj, ("left", "right"))
        try:
            assert len(first) == 2
            again = share_object(obj, ("left", "right"))
            assert again == []
            assert obj._shared["left"] is first[0]
        finally:
            for handle in first:
                handle.release()

    def test_registry_spans_objects(self, payload):
        a = _Carrier(payload, payload.copy(), tag="a")
        b = _Carrier(payload, payload.copy(), tag="b")
        registry = {}
        created = share_object(a, ("left", "right"), registry=registry)
        created += share_object(b, ("left", "right"), registry=registry)
        try:
            # ``payload`` appears in both objects but gets one segment.
            assert len(created) == 3
            assert a._shared["left"] is b._shared["left"]
        finally:
            for handle in created:
                handle.release()


def _child_checksum(blob, queue):
    handle = pickle.loads(blob)
    queue.put(float(handle.array.sum()))
